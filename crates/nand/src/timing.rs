//! NAND operation latencies.
//!
//! Table V of the paper gives per-page-size latencies taken from Micron MLC
//! datasheets: a 4 KiB page reads in 160 µs and programs in 1385 µs, an
//! 8 KiB page reads in 244 µs and programs in 1491 µs, and a block erase
//! takes 3.8 ms regardless of page size. On top of the cell latencies, data
//! must cross the channel between controller and die; the transfer cost
//! scales with the page size and the bus rate.

use hps_core::{Bytes, SimDuration};

/// Read/program latency pair for one page size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageTiming {
    /// Time to read a page from the cells into the plane register.
    pub read: SimDuration,
    /// Time to program a page from the plane register into the cells.
    pub program: SimDuration,
}

/// Complete timing model for a NAND die, covering both page sizes used by
/// the HPS scheme.
///
/// # Example
///
/// ```
/// use hps_core::Bytes;
/// use hps_nand::NandTiming;
///
/// let t = NandTiming::TABLE_V;
/// assert_eq!(t.page_timing(Bytes::kib(4)).read.as_us(), 160);
/// assert_eq!(t.page_timing(Bytes::kib(8)).program.as_us(), 1491);
/// assert_eq!(t.erase.as_us(), 3_800);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NandTiming {
    /// Timing for 4 KiB pages.
    pub page_4k: PageTiming,
    /// Timing for 8 KiB pages.
    pub page_8k: PageTiming,
    /// Block erase latency (page-size independent in Table V).
    pub erase: SimDuration,
    /// Channel transfer cost per byte (controller ↔ die).
    pub transfer_ns_per_byte: u64,
}

impl NandTiming {
    /// The latencies of Table V (Micron MT29F datasheets).
    pub const TABLE_V: NandTiming = NandTiming {
        page_4k: PageTiming {
            read: SimDuration::from_us(160),
            program: SimDuration::from_us(1_385),
        },
        page_8k: PageTiming {
            read: SimDuration::from_us(244),
            program: SimDuration::from_us(1_491),
        },
        erase: SimDuration::from_us(3_800),
        // ~200 MB/s eMMC 4.51 bus → 5 ns/byte.
        transfer_ns_per_byte: 5,
    };

    /// Timing pair for the given page size.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is neither 4 KiB nor 8 KiB — the only sizes the
    /// paper's HPS design (and this model) supports.
    pub fn page_timing(&self, page_size: Bytes) -> PageTiming {
        if page_size == Bytes::kib(4) {
            self.page_4k
        } else if page_size == Bytes::kib(8) {
            self.page_8k
        } else {
            panic!("unsupported page size {page_size}; only 4 KiB and 8 KiB are modeled")
        }
    }

    /// Time to move `size` bytes across the channel.
    pub fn transfer(&self, size: Bytes) -> SimDuration {
        SimDuration::from_ns(size.as_u64() * self.transfer_ns_per_byte)
    }

    /// Full cost of servicing a page read: cell read plus transfer out.
    pub fn read_total(&self, page_size: Bytes) -> SimDuration {
        self.page_timing(page_size).read + self.transfer(page_size)
    }

    /// Full cost of servicing a page program: transfer in plus cell program.
    pub fn program_total(&self, page_size: Bytes) -> SimDuration {
        self.transfer(page_size) + self.page_timing(page_size).program
    }
}

impl Default for NandTiming {
    fn default() -> Self {
        NandTiming::TABLE_V
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_values() {
        let t = NandTiming::TABLE_V;
        assert_eq!(t.page_4k.read.as_us(), 160);
        assert_eq!(t.page_4k.program.as_us(), 1_385);
        assert_eq!(t.page_8k.read.as_us(), 244);
        assert_eq!(t.page_8k.program.as_us(), 1_491);
        assert_eq!(t.erase.as_ms(), 3);
    }

    #[test]
    fn eight_k_page_is_less_than_twice_the_4k_cost() {
        // The entire HPS advantage rests on this datasheet fact: one 8 KiB
        // program moves twice the data for far less than twice the time.
        let t = NandTiming::TABLE_V;
        assert!(t.page_8k.program < t.page_4k.program * 2);
        assert!(t.page_8k.read < t.page_4k.read * 2);
    }

    #[test]
    fn transfer_scales_with_size() {
        let t = NandTiming::TABLE_V;
        assert_eq!(
            t.transfer(Bytes::kib(8)).as_ns(),
            2 * t.transfer(Bytes::kib(4)).as_ns()
        );
    }

    #[test]
    fn totals_compose() {
        let t = NandTiming::TABLE_V;
        let four = Bytes::kib(4);
        assert_eq!(t.read_total(four), t.page_4k.read + t.transfer(four));
        assert_eq!(t.program_total(four), t.page_4k.program + t.transfer(four));
    }

    #[test]
    #[should_panic(expected = "unsupported page size")]
    fn odd_page_size_panics() {
        let _ = NandTiming::TABLE_V.page_timing(Bytes::kib(16));
    }
}
