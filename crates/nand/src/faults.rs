//! Deterministic, seed-driven NAND fault model.
//!
//! Real eMMC parts spend their lives handling three failure families the
//! rest of this simulator idealizes away: *program/erase failures*
//! (transient or block-killing), *raw bit errors* whose rate climbs with
//! wear and read disturb, and *sudden power loss*. This module supplies the
//! physics half of that story — [`FaultConfig`] describes a fault profile
//! and answers "does this operation fail?" with **pure hash draws**: every
//! decision is a deterministic function of the fault seed and the
//! operation's physical coordinates (plane, block, page, the block's erase
//! epoch, retry index). No RNG stream is consumed, so fault outcomes do not
//! depend on operation interleaving, GC timing, or the `--jobs` worker
//! count — the same seed and config always reproduce the same failures.
//!
//! The policy half — read-retry, bad-block remapping, write re-drive,
//! power-loss recovery — lives above, in `hps_ftl::recovery`.
//!
//! [`FaultConfig::NONE`] (the default everywhere) disables every draw; the
//! simulator's behaviour and outputs are byte-identical to a build without
//! this module.

use hps_core::{Bytes, Error, Result};

/// splitmix64's finalizer: a fast, high-quality 64-bit mixer.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform float in `[0, 1)` from a hash (53 mantissa bits).
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Domain separators so the same coordinates draw independently per
/// operation kind.
#[derive(Clone, Copy)]
enum DrawKind {
    Program = 1,
    Erase = 2,
    Read = 3,
}

/// A deterministic fault-injection profile for the NAND array.
///
/// All probabilities are per-operation; the raw bit-error rate (RBER) is
/// per-bit. [`FaultConfig::NONE`] turns every mechanism off and is the
/// default on every device configuration, keeping existing results
/// byte-identical.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Seed for the pure hash draws; same seed + same config ⇒ identical
    /// fault outcomes on every platform and at any parallelism.
    pub seed: u64,
    /// Probability that one page program fails (the page is consumed and
    /// the FTL re-drives the write to a fresh page).
    pub program_fail_prob: f64,
    /// Probability that one block erase fails (the block is retired to the
    /// bad-block list and a spare adopted in its place).
    pub erase_fail_prob: f64,
    /// Raw bit-error rate of a fresh page (errors per bit read).
    pub rber_base: f64,
    /// Additional RBER per erase the page's block has endured
    /// (wear-dependent error growth).
    pub rber_wear_slope: f64,
    /// Additional RBER per read issued to the block since its last erase
    /// (read-disturb accumulation; `0.0` disables the mechanism).
    pub read_disturb_rber: f64,
    /// ECC strength: correctable bits per KiB of page payload. The
    /// per-page threshold scales with page size, so an 8 KiB page corrects
    /// twice the bits of a 4 KiB page.
    pub ecc_bits_per_kib: u32,
    /// Read-retry budget: additional read attempts (each at a reduced
    /// effective RBER) before a read is declared uncorrectable (UECC).
    pub max_read_retries: u32,
    /// Effective-RBER multiplier applied per retry attempt (modeling
    /// re-reads at tuned reference voltages); must be in `(0, 1]`.
    pub retry_rber_scale: f64,
    /// Spare blocks reserved per plane *per pool* for bad-block
    /// remapping. Spares are extra physical blocks: they never add logical
    /// capacity.
    pub spare_blocks_per_pool: usize,
    /// Program failures a block may accrue before its next erase retires
    /// it as grown-bad (`0` = never retire on program failures).
    pub bad_block_program_fails: u32,
}

impl FaultConfig {
    /// The no-fault profile: every mechanism disabled. This is the default
    /// everywhere and guarantees byte-identical behaviour to a fault-free
    /// build.
    pub const NONE: FaultConfig = FaultConfig {
        seed: 0,
        program_fail_prob: 0.0,
        erase_fail_prob: 0.0,
        rber_base: 0.0,
        rber_wear_slope: 0.0,
        read_disturb_rber: 0.0,
        ecc_bits_per_kib: 0,
        max_read_retries: 0,
        retry_rber_scale: 1.0,
        spare_blocks_per_pool: 0,
        bad_block_program_fails: 0,
    };

    /// `true` when any fault mechanism is active. The FTL takes the
    /// fault-free fast path (no draws, no OOB journal, no counters) when
    /// this is `false`.
    pub fn enabled(&self) -> bool {
        *self != FaultConfig::NONE
    }

    /// Validates the profile.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if any probability is outside
    /// `[0, 0.5]` (rates above one half would defeat bounded re-drive), a
    /// rate is negative or non-finite, the retry scale is outside
    /// `(0, 1]`, or bit errors are modeled without any ECC to correct
    /// them.
    pub fn validate(&self) -> Result<()> {
        let probs = [
            ("program_fail_prob", self.program_fail_prob),
            ("erase_fail_prob", self.erase_fail_prob),
        ];
        for (name, p) in probs {
            if !(0.0..=0.5).contains(&p) {
                return Err(Error::InvalidConfig(format!(
                    "{name} must be in [0, 0.5], got {p}"
                )));
            }
        }
        let rates = [
            ("rber_base", self.rber_base),
            ("rber_wear_slope", self.rber_wear_slope),
            ("read_disturb_rber", self.read_disturb_rber),
        ];
        for (name, r) in rates {
            if !r.is_finite() || r < 0.0 {
                return Err(Error::InvalidConfig(format!(
                    "{name} must be a finite non-negative rate, got {r}"
                )));
            }
        }
        if !(self.retry_rber_scale > 0.0 && self.retry_rber_scale <= 1.0) {
            return Err(Error::InvalidConfig(format!(
                "retry_rber_scale must be in (0, 1], got {}",
                self.retry_rber_scale
            )));
        }
        if self.rber_base > 0.0 && self.ecc_bits_per_kib == 0 {
            return Err(Error::InvalidConfig(
                "rber_base > 0 needs ecc_bits_per_kib > 0 (no ECC would fail every read)".into(),
            ));
        }
        Ok(())
    }

    /// One hash draw, domain-separated by operation kind and mixed over
    /// the physical coordinates.
    #[inline]
    fn draw(&self, kind: DrawKind, a: u64, b: u64, c: u64, d: u64) -> u64 {
        let mut h = self
            .seed
            .wrapping_add((kind as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        for v in [a, b, c, d] {
            h = mix64(h ^ v.wrapping_add(0xA24B_AED4_963E_E407));
        }
        h
    }

    /// Does programming page (`plane`, `block`, `page`) fail? `erase_epoch`
    /// is the block's erase count, so each reuse of the page draws afresh.
    pub fn program_fails(&self, plane: usize, block: usize, page: usize, erase_epoch: u64) -> bool {
        self.program_fail_prob > 0.0
            && unit(self.draw(
                DrawKind::Program,
                plane as u64,
                block as u64,
                page as u64,
                erase_epoch,
            )) < self.program_fail_prob
    }

    /// Does erasing block (`plane`, `block`) fail at this erase epoch?
    pub fn erase_fails(&self, plane: usize, block: usize, erase_epoch: u64) -> bool {
        self.erase_fail_prob > 0.0
            && unit(self.draw(DrawKind::Erase, plane as u64, block as u64, 0, erase_epoch))
                < self.erase_fail_prob
    }

    /// Effective RBER of one read attempt: base rate, plus wear growth,
    /// plus read disturb, scaled down per retry.
    pub fn effective_rber(&self, erase_count: u64, reads_since_erase: u64, retry: u32) -> f64 {
        let raw = self.rber_base
            + self.rber_wear_slope * erase_count as f64
            + self.read_disturb_rber * reads_since_erase as f64;
        raw * self.retry_rber_scale.powi(retry as i32)
    }

    /// ECC correction threshold for one page: correctable bits scale with
    /// the payload size.
    pub fn ecc_threshold(&self, page_size: Bytes) -> u32 {
        let kib = (page_size.as_u64() / 1024).max(1);
        self.ecc_bits_per_kib.saturating_mul(kib as u32)
    }

    /// Raw bit errors observed by one read attempt of page (`plane`,
    /// `block`, `page`): a Poisson draw with mean `effective_rber × page
    /// bits`, sampled by deterministic inversion from one hash. The retry
    /// index is folded into the draw so each attempt re-samples
    /// independently.
    // Every argument is a physical coordinate or wear counter that feeds
    // the deterministic draw; bundling them into a struct would obscure
    // the call sites without removing any.
    #[allow(clippy::too_many_arguments)]
    pub fn read_bit_errors(
        &self,
        plane: usize,
        block: usize,
        page: usize,
        page_size: Bytes,
        erase_count: u64,
        reads_since_erase: u64,
        retry: u32,
    ) -> u32 {
        let lambda = self.effective_rber(erase_count, reads_since_erase, retry)
            * (page_size.as_u64() * 8) as f64;
        if lambda <= 0.0 {
            return 0;
        }
        let cap = self.ecc_threshold(page_size).saturating_mul(4).max(64);
        // Far past the ECC budget the exact count is irrelevant: the read
        // is uncorrectable either way, and the inversion loop below would
        // spin for thousands of iterations.
        if lambda >= cap as f64 {
            return cap;
        }
        let coords = (block as u64) << 20 ^ (page as u64) << 4 ^ retry as u64;
        let u = unit(self.draw(
            DrawKind::Read,
            plane as u64,
            coords,
            erase_count,
            reads_since_erase,
        ));
        // Poisson inversion: walk the CDF until it passes the uniform.
        let mut p = (-lambda).exp();
        let mut cum = p;
        let mut k: u32 = 0;
        while u > cum && k < cap {
            k += 1;
            p *= lambda / k as f64;
            cum += p;
        }
        k
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::NONE
    }
}

/// Reliability counters accumulated while a fault profile is active.
///
/// Zero-valued and never exported when faults are disabled, so the
/// fault-free metric surface is unchanged.
#[must_use = "reliability counters are the observable outcome of fault injection"]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Page programs that failed (each consumed a page and was re-driven).
    pub program_failures: u64,
    /// Block erases that failed (each retired the block).
    pub erase_failures: u64,
    /// Blocks retired to the bad-block list (erase failures plus grown-bad
    /// retirements from accumulated program failures).
    pub bad_blocks: u64,
    /// Spare blocks adopted to replace retired blocks.
    pub spare_adoptions: u64,
    /// Extra read attempts issued by the read-retry state machine.
    pub read_retries: u64,
    /// Reads that needed at least one retry but ultimately corrected.
    pub corrected_reads: u64,
    /// Reads that exhausted the retry budget: uncorrectable ECC events.
    pub uecc_events: u64,
    /// Histogram of retry depth per physical read (`[0]` = corrected on
    /// the first attempt, last bucket = that depth or deeper).
    pub retry_depth: [u64; 8],
}

impl FaultStats {
    /// Records the outcome of one physical read: how many retries it took
    /// (bucketed into the depth histogram) and whether ECC ultimately
    /// corrected it — `false` means the retry budget was exhausted and the
    /// read is a UECC event.
    pub fn record_read(&mut self, retries: u32, corrected: bool) {
        let bucket = (retries as usize).min(self.retry_depth.len() - 1);
        self.retry_depth[bucket] += 1;
        self.read_retries += u64::from(retries);
        if !corrected {
            self.uecc_events += 1;
        } else if retries > 0 {
            self.corrected_reads += 1;
        }
    }

    /// Element-wise accumulation (for merging per-shard stats).
    pub fn merge(&mut self, other: &FaultStats) {
        self.program_failures += other.program_failures;
        self.erase_failures += other.erase_failures;
        self.bad_blocks += other.bad_blocks;
        self.spare_adoptions += other.spare_adoptions;
        self.read_retries += other.read_retries;
        self.corrected_reads += other.corrected_reads;
        self.uecc_events += other.uecc_events;
        for (a, b) in self.retry_depth.iter_mut().zip(other.retry_depth.iter()) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn active() -> FaultConfig {
        FaultConfig {
            seed: 7,
            program_fail_prob: 0.05,
            erase_fail_prob: 0.02,
            rber_base: 1e-4,
            rber_wear_slope: 1e-6,
            read_disturb_rber: 1e-8,
            ecc_bits_per_kib: 8,
            max_read_retries: 3,
            retry_rber_scale: 0.5,
            spare_blocks_per_pool: 2,
            bad_block_program_fails: 2,
        }
    }

    #[test]
    fn none_is_disabled_and_valid() {
        assert!(!FaultConfig::NONE.enabled());
        assert!(FaultConfig::NONE.validate().is_ok());
        assert_eq!(FaultConfig::default(), FaultConfig::NONE);
        // No mechanism ever fires.
        for i in 0..64 {
            assert!(!FaultConfig::NONE.program_fails(0, i, 0, 0));
            assert!(!FaultConfig::NONE.erase_fails(0, i, 0));
            assert_eq!(
                FaultConfig::NONE.read_bit_errors(0, i, 0, Bytes::kib(4), 9, 9, 0),
                0
            );
        }
    }

    #[test]
    fn validation_rejects_bad_profiles() {
        let mut c = active();
        c.program_fail_prob = 0.9;
        assert!(c.validate().is_err());
        let mut c = active();
        c.rber_base = -1.0;
        assert!(c.validate().is_err());
        let mut c = active();
        c.retry_rber_scale = 0.0;
        assert!(c.validate().is_err());
        let mut c = active();
        c.ecc_bits_per_kib = 0;
        assert!(c.validate().is_err(), "RBER without ECC");
        assert!(active().validate().is_ok());
    }

    #[test]
    fn draws_are_pure_functions_of_coordinates() {
        let c = active();
        for (plane, block, page, epoch) in [(0, 1, 2, 0), (7, 511, 1023, 12)] {
            assert_eq!(
                c.program_fails(plane, block, page, epoch),
                c.program_fails(plane, block, page, epoch)
            );
            assert_eq!(
                c.read_bit_errors(plane, block, page, Bytes::kib(4), epoch, 3, 1),
                c.read_bit_errors(plane, block, page, Bytes::kib(4), epoch, 3, 1)
            );
        }
    }

    #[test]
    fn seed_changes_outcomes() {
        let a = active();
        let mut b = active();
        b.seed = 8;
        let diverges =
            (0..4096).any(|i| a.program_fails(0, i, 0, 0) != b.program_fails(0, i, 0, 0));
        assert!(diverges, "different seeds must differ somewhere");
    }

    #[test]
    fn program_failure_rate_tracks_probability() {
        let c = active();
        let n = 20_000;
        let fails = (0..n)
            .filter(|&i| c.program_fails(0, i % 64, i / 64, 0))
            .count();
        let rate = fails as f64 / n as f64;
        assert!(
            (rate - c.program_fail_prob).abs() < 0.01,
            "empirical {rate} vs configured {}",
            c.program_fail_prob
        );
    }

    #[test]
    fn ecc_threshold_scales_with_page_size() {
        let c = active();
        assert_eq!(c.ecc_threshold(Bytes::kib(4)), 32);
        assert_eq!(c.ecc_threshold(Bytes::kib(8)), 64);
    }

    #[test]
    fn wear_and_disturb_raise_rber_and_retries_lower_it() {
        let c = active();
        assert!(c.effective_rber(1000, 0, 0) > c.effective_rber(0, 0, 0));
        assert!(c.effective_rber(0, 1_000_000, 0) > c.effective_rber(0, 0, 0));
        assert!(c.effective_rber(0, 0, 2) < c.effective_rber(0, 0, 0));
    }

    #[test]
    fn bit_error_counts_follow_the_mean() {
        let mut c = active();
        c.rber_base = 5e-4; // mean ≈ 16.4 bits on a 4 KiB page
        let n = 2_000;
        let total: u64 = (0..n)
            .map(|i| c.read_bit_errors(0, i % 64, i / 64, Bytes::kib(4), 0, 0, 0) as u64)
            .sum();
        let mean = total as f64 / n as f64;
        let expect = 5e-4 * (4096.0 * 8.0);
        assert!(
            (mean - expect).abs() < expect * 0.1,
            "empirical mean {mean} vs expected {expect}"
        );
    }

    #[test]
    fn huge_lambda_saturates_without_spinning() {
        let mut c = active();
        c.rber_base = 0.25;
        let bits = c.read_bit_errors(0, 0, 0, Bytes::kib(8), 0, 0, 0);
        assert!(
            bits > c.ecc_threshold(Bytes::kib(8)),
            "must be uncorrectable"
        );
    }

    #[test]
    fn stats_record_and_merge() {
        let mut a = FaultStats::default();
        a.record_read(0, true);
        a.record_read(2, true);
        a.record_read(40, false); // UECC; depth clamps into the last bucket
        assert_eq!(a.read_retries, 42);
        assert_eq!(a.corrected_reads, 1);
        assert_eq!(a.uecc_events, 1);
        assert_eq!(a.retry_depth[0], 1);
        assert_eq!(a.retry_depth[2], 1);
        assert_eq!(a.retry_depth[7], 1);
        let mut b = FaultStats {
            uecc_events: 3,
            ..Default::default()
        };
        b.merge(&a);
        assert_eq!(b.read_retries, 42);
        assert_eq!(b.uecc_events, 4);
    }
}
