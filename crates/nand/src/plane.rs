//! A plane: the smallest unit of parallel access, holding a pool of blocks.
//!
//! In the HPS scheme a single plane mixes block page sizes — Fig. 10 of the
//! paper shows a die whose planes contain both 4 KiB-page blocks and
//! 8 KiB-page blocks. [`Plane`] therefore stores per-block page sizes and
//! exposes pool-level accounting *per page size*, which is what the FTL's
//! allocator and garbage collector operate on.

use crate::block::Block;
use core::fmt;
use hps_core::Bytes;

/// Index of a block within its plane.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub usize);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk{}", self.0)
    }
}

/// A physical page address within a plane.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PageAddr {
    /// The block within the plane.
    pub block: BlockId,
    /// The page within the block.
    pub page: usize,
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:p{}", self.block, self.page)
    }
}

/// A pool of blocks, possibly of mixed page sizes.
///
/// # Example
///
/// ```
/// use hps_core::Bytes;
/// use hps_nand::{BlockId, Plane};
///
/// // An HPS-style plane: two 4 KiB blocks and one 8 KiB block, 4 pages each.
/// let mut plane = Plane::new(&[(Bytes::kib(4), 2), (Bytes::kib(8), 1)], 4);
/// assert_eq!(plane.blocks_total(), 3);
/// assert_eq!(plane.free_pages(Bytes::kib(4)), 8);
/// assert_eq!(plane.free_pages(Bytes::kib(8)), 4);
/// let page = plane.block_mut(BlockId(2)).program_next().unwrap();
/// assert_eq!(page, 0);
/// assert_eq!(plane.free_pages(Bytes::kib(8)), 3);
/// ```
#[derive(Clone, Debug)]
pub struct Plane {
    blocks: Vec<Block>,
}

impl Plane {
    /// Creates a plane from `(page_size, block_count)` pool specs; blocks are
    /// laid out in spec order, so `BlockId`s `0..n0` use the first spec's page
    /// size, and so on.
    ///
    /// # Panics
    ///
    /// Panics if no spec contributes any block, or any page size is zero.
    pub fn new(pools: &[(Bytes, usize)], pages_per_block: usize) -> Self {
        let mut blocks = Vec::new();
        for &(page_size, count) in pools {
            for _ in 0..count {
                blocks.push(Block::new(page_size, pages_per_block));
            }
        }
        assert!(
            !blocks.is_empty(),
            "a plane must contain at least one block"
        );
        Plane { blocks }
    }

    /// Total number of blocks in the plane.
    pub fn blocks_total(&self) -> usize {
        self.blocks.len()
    }

    /// Shared access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.0]
    }

    /// Iterates `(BlockId, &Block)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks.iter().enumerate().map(|(i, b)| (BlockId(i), b))
    }

    /// Iterates blocks of one page size.
    pub fn iter_pool(&self, page_size: Bytes) -> impl Iterator<Item = (BlockId, &Block)> {
        self.iter().filter(move |(_, b)| b.page_size() == page_size)
    }

    /// Free (programmable) pages remaining across all blocks of `page_size`.
    pub fn free_pages(&self, page_size: Bytes) -> usize {
        self.iter_pool(page_size).map(|(_, b)| b.free_pages()).sum()
    }

    /// Valid pages across all blocks of `page_size`.
    pub fn valid_pages(&self, page_size: Bytes) -> usize {
        self.iter_pool(page_size)
            .map(|(_, b)| b.valid_pages())
            .sum()
    }

    /// Invalid (reclaimable) pages across all blocks of `page_size`.
    pub fn invalid_pages(&self, page_size: Bytes) -> usize {
        self.iter_pool(page_size)
            .map(|(_, b)| b.invalid_pages())
            .sum()
    }

    /// Number of completely erased blocks of `page_size`.
    pub fn erased_blocks(&self, page_size: Bytes) -> usize {
        self.iter_pool(page_size)
            .filter(|(_, b)| b.is_erased())
            .count()
    }

    /// Total erase operations performed on this plane.
    pub fn total_erases(&self) -> u64 {
        self.blocks.iter().map(Block::erase_count).sum()
    }

    /// The distinct page sizes present in this plane, ascending.
    pub fn page_sizes(&self) -> Vec<Bytes> {
        let mut sizes: Vec<Bytes> = Vec::new();
        for b in &self.blocks {
            if !sizes.contains(&b.page_size()) {
                sizes.push(b.page_size());
            }
        }
        sizes.sort();
        sizes
    }

    /// Raw byte capacity of the plane (sum over blocks of pages × page size).
    pub fn capacity(&self) -> Bytes {
        self.blocks
            .iter()
            .map(|b| b.page_size() * b.pages_per_block() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hps_plane() -> Plane {
        Plane::new(&[(Bytes::kib(4), 2), (Bytes::kib(8), 1)], 4)
    }

    #[test]
    fn layout_follows_spec_order() {
        let p = hps_plane();
        assert_eq!(p.block(BlockId(0)).page_size(), Bytes::kib(4));
        assert_eq!(p.block(BlockId(1)).page_size(), Bytes::kib(4));
        assert_eq!(p.block(BlockId(2)).page_size(), Bytes::kib(8));
    }

    #[test]
    fn pool_accounting_is_per_page_size() {
        let mut p = hps_plane();
        p.block_mut(BlockId(0)).program_next();
        p.block_mut(BlockId(2)).program_next();
        assert_eq!(p.free_pages(Bytes::kib(4)), 7);
        assert_eq!(p.free_pages(Bytes::kib(8)), 3);
        assert_eq!(p.valid_pages(Bytes::kib(4)), 1);
        assert_eq!(p.valid_pages(Bytes::kib(8)), 1);
    }

    #[test]
    fn capacity_sums_mixed_pools() {
        let p = hps_plane();
        // 2 blocks × 4 pages × 4 KiB + 1 block × 4 pages × 8 KiB = 64 KiB.
        assert_eq!(p.capacity(), Bytes::kib(64));
    }

    #[test]
    fn page_sizes_sorted_unique() {
        let p = hps_plane();
        assert_eq!(p.page_sizes(), vec![Bytes::kib(4), Bytes::kib(8)]);
        let uniform = Plane::new(&[(Bytes::kib(4), 3)], 4);
        assert_eq!(uniform.page_sizes(), vec![Bytes::kib(4)]);
    }

    #[test]
    fn erased_blocks_counts_untouched() {
        let mut p = hps_plane();
        assert_eq!(p.erased_blocks(Bytes::kib(4)), 2);
        p.block_mut(BlockId(0)).program_next();
        assert_eq!(p.erased_blocks(Bytes::kib(4)), 1);
    }

    #[test]
    fn total_erases_accumulates() {
        let mut p = hps_plane();
        let id = BlockId(0);
        let page = p.block_mut(id).program_next().unwrap();
        p.block_mut(id).invalidate(page);
        p.block_mut(id).erase();
        assert_eq!(p.total_erases(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn empty_plane_panics() {
        let _ = Plane::new(&[], 4);
    }
}
