//! Flash array geometry: the channel × chip × die × plane hierarchy.
//!
//! Table V of the paper configures every scheme as 2 channels × 1 chip ×
//! 2 dies × 2 planes. [`Geometry`] captures those four dimensions and
//! [`PlaneAddr`] names one plane inside the hierarchy; a flat plane index
//! (`0..planes_total()`) is used as the canonical ordering everywhere else
//! in the workspace.

use core::fmt;

/// Dimensions of the flash array.
///
/// # Example
///
/// ```
/// use hps_nand::Geometry;
///
/// let g = Geometry::TABLE_V;
/// assert_eq!(g.planes_total(), 8);
/// assert_eq!(g.dies_total(), 4);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Geometry {
    /// Independent channels (buses) between controller and flash.
    pub channels: usize,
    /// Chips attached to each channel.
    pub chips_per_channel: usize,
    /// Dies inside each chip.
    pub dies_per_chip: usize,
    /// Planes inside each die.
    pub planes_per_die: usize,
}

impl Geometry {
    /// The geometry used for all three schemes in Table V:
    /// 2 channels × 1 chip × 2 dies × 2 planes.
    pub const TABLE_V: Geometry = Geometry {
        channels: 2,
        chips_per_channel: 1,
        dies_per_chip: 2,
        planes_per_die: 2,
    };

    /// Creates a geometry, validating that every dimension is non-zero.
    ///
    /// # Errors
    ///
    /// Returns [`hps_core::Error::InvalidConfig`] if any dimension is zero.
    pub fn new(
        channels: usize,
        chips_per_channel: usize,
        dies_per_chip: usize,
        planes_per_die: usize,
    ) -> hps_core::Result<Geometry> {
        if channels == 0 || chips_per_channel == 0 || dies_per_chip == 0 || planes_per_die == 0 {
            return Err(hps_core::Error::InvalidConfig(
                "all geometry dimensions must be non-zero".into(),
            ));
        }
        Ok(Geometry {
            channels,
            chips_per_channel,
            dies_per_chip,
            planes_per_die,
        })
    }

    /// Total number of dies in the array.
    pub fn dies_total(&self) -> usize {
        self.channels * self.chips_per_channel * self.dies_per_chip
    }

    /// Total number of planes in the array.
    pub fn planes_total(&self) -> usize {
        self.dies_total() * self.planes_per_die
    }

    /// Decodes a flat plane index into its position in the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `index >= planes_total()`.
    pub fn plane_addr(&self, index: usize) -> PlaneAddr {
        assert!(index < self.planes_total(), "plane index out of range");
        let plane = index % self.planes_per_die;
        let rest = index / self.planes_per_die;
        let die = rest % self.dies_per_chip;
        let rest = rest / self.dies_per_chip;
        let chip = rest % self.chips_per_channel;
        let channel = rest / self.chips_per_channel;
        PlaneAddr {
            channel,
            chip,
            die,
            plane,
        }
    }

    /// Encodes a hierarchical address back to its flat plane index.
    ///
    /// # Panics
    ///
    /// Panics if any component is out of range for this geometry.
    pub fn plane_index(&self, addr: PlaneAddr) -> usize {
        assert!(addr.channel < self.channels, "channel out of range");
        assert!(addr.chip < self.chips_per_channel, "chip out of range");
        assert!(addr.die < self.dies_per_chip, "die out of range");
        assert!(addr.plane < self.planes_per_die, "plane out of range");
        ((addr.channel * self.chips_per_channel + addr.chip) * self.dies_per_chip + addr.die)
            * self.planes_per_die
            + addr.plane
    }

    /// The flat die index (`0..dies_total()`) that owns flat plane `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= planes_total()`.
    pub fn die_of_plane(&self, index: usize) -> usize {
        assert!(index < self.planes_total(), "plane index out of range");
        index / self.planes_per_die
    }

    /// The channel index that serves flat plane `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= planes_total()`.
    pub fn channel_of_plane(&self, index: usize) -> usize {
        self.plane_addr(index).channel
    }

    /// Iterates every flat plane index.
    pub fn plane_indices(&self) -> impl Iterator<Item = usize> {
        0..self.planes_total()
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Geometry::TABLE_V
    }
}

impl fmt::Display for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}x{}x{} (ch×chip×die×plane)",
            self.channels, self.chips_per_channel, self.dies_per_chip, self.planes_per_die
        )
    }
}

/// The position of one plane in the flash hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PlaneAddr {
    /// Channel index.
    pub channel: usize,
    /// Chip index within the channel.
    pub chip: usize,
    /// Die index within the chip.
    pub die: usize,
    /// Plane index within the die.
    pub plane: usize,
}

impl fmt::Display for PlaneAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ch{}/chip{}/die{}/plane{}",
            self.channel, self.chip, self.die, self.plane
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_counts() {
        let g = Geometry::TABLE_V;
        assert_eq!(g.dies_total(), 4);
        assert_eq!(g.planes_total(), 8);
    }

    #[test]
    fn flat_index_round_trips() {
        let g = Geometry::new(2, 2, 2, 2).unwrap();
        for i in g.plane_indices() {
            let addr = g.plane_addr(i);
            assert_eq!(g.plane_index(addr), i);
        }
    }

    #[test]
    fn channel_mapping_partitions_planes() {
        let g = Geometry::TABLE_V;
        let per_channel = g.planes_total() / g.channels;
        let mut counts = vec![0usize; g.channels];
        for i in g.plane_indices() {
            counts[g.channel_of_plane(i)] += 1;
        }
        assert!(counts.iter().all(|&c| c == per_channel));
    }

    #[test]
    fn die_of_plane_groups_adjacent_planes() {
        let g = Geometry::TABLE_V;
        assert_eq!(g.die_of_plane(0), g.die_of_plane(1));
        assert_ne!(g.die_of_plane(1), g.die_of_plane(2));
    }

    #[test]
    fn zero_dimension_rejected() {
        assert!(Geometry::new(0, 1, 1, 1).is_err());
        assert!(Geometry::new(1, 1, 0, 1).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_plane_panics() {
        let g = Geometry::TABLE_V;
        let _ = g.plane_addr(8);
    }
}
