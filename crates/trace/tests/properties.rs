//! Property-based tests for trace serialization and statistics.

use hps_core::{Bytes, Direction, IoRequest, SimTime};
use hps_trace::io::{read_trace, write_trace};
use hps_trace::{
    interarrival_histogram, size_histogram, SizeStats, TimingStats, Trace, TraceRecord,
};
use proptest::prelude::*;

/// Strategy producing a well-formed trace: sorted arrivals, 4 KiB-aligned
/// sizes, optional replay timestamps.
fn trace_strategy() -> impl Strategy<Value = Trace> {
    prop::collection::vec(
        (
            0u64..10_000,
            prop::bool::ANY,
            1u64..64,
            0u64..1_000_000,
            prop::bool::ANY,
            0u64..5_000,
        ),
        0..120,
    )
    .prop_map(|mut raw| {
        raw.sort_by_key(|r| r.0);
        let mut trace = Trace::new("prop");
        for (i, (ms, is_write, pages, lba_page, replayed, svc_ms)) in raw.into_iter().enumerate() {
            let dir = if is_write {
                Direction::Write
            } else {
                Direction::Read
            };
            let req = IoRequest::new(
                i as u64,
                SimTime::from_ms(ms),
                dir,
                Bytes::kib(4 * pages),
                lba_page * 4096,
            );
            let mut rec = TraceRecord::new(req);
            if replayed {
                let start = SimTime::from_ms(ms + svc_ms / 10);
                rec = rec
                    .with_service_start(start)
                    .with_finish(start + hps_core::SimDuration::from_ms(svc_ms));
            }
            trace.push(rec);
        }
        trace
    })
}

proptest! {
    #[test]
    fn csv_round_trip_is_lossless(trace in trace_strategy()) {
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(buf.as_slice(), "prop").unwrap();
        prop_assert_eq!(back.len(), trace.len());
        for (a, b) in trace.iter().zip(back.iter()) {
            prop_assert_eq!(a.request.arrival, b.request.arrival);
            prop_assert_eq!(a.request.direction, b.request.direction);
            prop_assert_eq!(a.request.size, b.request.size);
            prop_assert_eq!(a.request.lba, b.request.lba);
            prop_assert_eq!(a.service_start, b.service_start);
            prop_assert_eq!(a.finish, b.finish);
        }
    }

    #[test]
    fn size_stats_identities(trace in trace_strategy()) {
        let s = SizeStats::from_trace(&trace);
        prop_assert_eq!(s.num_reqs as usize, trace.len());
        prop_assert_eq!(s.data_size, trace.total_bytes());
        prop_assert!((0.0..=100.0).contains(&s.write_req_pct));
        prop_assert!((0.0..=100.0).contains(&s.write_size_pct));
        if s.num_reqs > 0 {
            // Mean size times count equals total bytes.
            let reconstructed = s.avg_size_kib * s.num_reqs as f64;
            prop_assert!((reconstructed - s.data_size.as_kib_f64()).abs() < 1.0);
            prop_assert!(Bytes::kib(s.avg_size_kib.ceil() as u64) <= s.max_size + Bytes::kib(1));
        }
    }

    #[test]
    fn timing_stats_bounds(trace in trace_strategy()) {
        let s = TimingStats::from_trace(&trace);
        prop_assert!((0.0..=100.0).contains(&s.nowait_pct));
        prop_assert!((0.0..=100.0).contains(&s.spatial_locality_pct));
        prop_assert!((0.0..=100.0).contains(&s.temporal_locality_pct));
        prop_assert!(s.mean_response_ms >= s.mean_service_ms - 1e-9);
        prop_assert!(s.duration_s >= 0.0);
    }

    #[test]
    fn histograms_count_every_sample(trace in trace_strategy()) {
        prop_assert_eq!(size_histogram(&trace).total() as usize, trace.len());
        let gaps = interarrival_histogram(&trace);
        prop_assert_eq!(gaps.total() as usize, trace.len().saturating_sub(1));
    }

    #[test]
    fn reset_replay_clears_all_timestamps(trace in trace_strategy()) {
        let mut t = trace;
        t.reset_replay();
        prop_assert!(t.iter().all(|r| r.service_start.is_none() && r.finish.is_none()));
        let s = TimingStats::from_trace(&t);
        prop_assert_eq!(s.nowait_pct, 0.0);
        prop_assert_eq!(s.mean_service_ms, 0.0);
    }
}
