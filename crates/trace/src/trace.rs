//! An ordered collection of trace records.

use crate::record::TraceRecord;
use core::fmt;
use hps_core::{Bytes, Error, IoRequest, Result, SimDuration, SimTime};

/// A named block-level I/O trace, ordered by arrival time.
///
/// # Example
///
/// ```
/// use hps_core::{Bytes, Direction, IoRequest, SimTime};
/// use hps_trace::Trace;
///
/// let mut t = Trace::new("demo");
/// t.push_request(IoRequest::new(0, SimTime::from_ms(1), Direction::Write, Bytes::kib(4), 0));
/// t.push_request(IoRequest::new(1, SimTime::from_ms(2), Direction::Read, Bytes::kib(8), 4096));
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.total_bytes(), Bytes::kib(12));
/// assert_eq!(t.duration().as_ms(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Trace {
    name: String,
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Creates an empty trace with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            name: name.into(),
            records: Vec::new(),
        }
    }

    /// Builds a trace from pre-ordered records.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if records are not sorted by arrival.
    pub fn from_records(name: impl Into<String>, records: Vec<TraceRecord>) -> Result<Self> {
        if records.windows(2).any(|w| w[0].arrival() > w[1].arrival()) {
            return Err(Error::InvalidConfig(
                "trace records must be sorted by arrival".into(),
            ));
        }
        Ok(Trace {
            name: name.into(),
            records,
        })
    }

    /// The trace's name (the application it models, e.g. `"Twitter"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a record.
    ///
    /// # Panics
    ///
    /// Panics if the record arrives before the current last record —
    /// traces are strictly ordered by arrival.
    pub fn push(&mut self, record: TraceRecord) {
        if let Some(last) = self.records.last() {
            assert!(
                record.arrival() >= last.arrival(),
                "records must be appended in arrival order"
            );
        }
        self.records.push(record);
    }

    /// Appends a bare request (no service timestamps).
    ///
    /// # Panics
    ///
    /// Panics if the request arrives before the current last record.
    pub fn push_request(&mut self, request: IoRequest) {
        self.push(TraceRecord::new(request));
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records in arrival order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Mutable access to the records; used by the replay engine to fill in
    /// service timestamps. Arrival order must be preserved by the caller.
    pub fn records_mut(&mut self) -> &mut [TraceRecord] {
        &mut self.records
    }

    /// Iterates the records.
    pub fn iter(&self) -> core::slice::Iter<'_, TraceRecord> {
        self.records.iter()
    }

    /// Total bytes moved (read + write) — Table III's *Data Size*.
    pub fn total_bytes(&self) -> Bytes {
        self.records.iter().map(|r| r.request.size).sum()
    }

    /// Bytes written — numerator of Table III's *Write Size Pct*.
    pub fn written_bytes(&self) -> Bytes {
        self.records
            .iter()
            .filter(|r| r.direction().is_write())
            .map(|r| r.request.size)
            .sum()
    }

    /// Recording duration: last arrival − first arrival. Zero when the trace
    /// has fewer than two records. (Table IV's *Recording Duration*.)
    pub fn duration(&self) -> SimDuration {
        match (self.records.first(), self.records.last()) {
            (Some(first), Some(last)) => last.arrival() - first.arrival(),
            _ => SimDuration::ZERO,
        }
    }

    /// The arrival time of the first request, or simulation zero when empty.
    pub fn start_time(&self) -> SimTime {
        self.records.first().map_or(SimTime::ZERO, |r| r.arrival())
    }

    /// `true` once every record has been replayed (has both timestamps).
    pub fn is_replayed(&self) -> bool {
        self.records.iter().all(TraceRecord::is_completed)
    }

    /// Validates the invariants the analysis code relies on: arrival-sorted,
    /// non-zero 4 KiB-aligned sizes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] describing the first violation.
    pub fn validate(&self) -> Result<()> {
        let page = Bytes::kib(4);
        for (i, r) in self.records.iter().enumerate() {
            if !r.request.size.is_multiple_of(page) {
                return Err(Error::InvalidConfig(format!(
                    "record {i}: size {} not 4 KiB-aligned",
                    r.request.size
                )));
            }
        }
        if self
            .records
            .windows(2)
            .any(|w| w[0].arrival() > w[1].arrival())
        {
            return Err(Error::InvalidConfig("records out of arrival order".into()));
        }
        Ok(())
    }

    /// Strips service timestamps, returning the trace to its pre-replay
    /// state (used when replaying one generated trace on several schemes).
    pub fn reset_replay(&mut self) {
        for r in &mut self.records {
            r.service_start = None;
            r.finish = None;
        }
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} reqs, {} total, {:.1}s",
            self.name,
            self.len(),
            self.total_bytes(),
            self.duration().as_secs_f64()
        )
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceRecord;
    type IntoIter = core::slice::Iter<'a, TraceRecord>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hps_core::Direction;

    fn req(id: u64, ms: u64, dir: Direction, kib: u64, lba: u64) -> IoRequest {
        IoRequest::new(id, SimTime::from_ms(ms), dir, Bytes::kib(kib), lba)
    }

    #[test]
    fn accumulates_sizes_and_duration() {
        let mut t = Trace::new("t");
        t.push_request(req(0, 0, Direction::Write, 4, 0));
        t.push_request(req(1, 10, Direction::Read, 8, 4096));
        t.push_request(req(2, 30, Direction::Write, 16, 0));
        assert_eq!(t.total_bytes(), Bytes::kib(28));
        assert_eq!(t.written_bytes(), Bytes::kib(20));
        assert_eq!(t.duration().as_ms(), 30);
        assert_eq!(t.start_time(), SimTime::ZERO);
    }

    #[test]
    fn empty_trace_is_benign() {
        let t = Trace::new("empty");
        assert!(t.is_empty());
        assert_eq!(t.duration(), SimDuration::ZERO);
        assert_eq!(t.total_bytes(), Bytes::ZERO);
        assert!(t.validate().is_ok());
        assert!(t.is_replayed());
    }

    #[test]
    fn from_records_rejects_unsorted() {
        let a = TraceRecord::new(req(0, 10, Direction::Read, 4, 0));
        let b = TraceRecord::new(req(1, 5, Direction::Read, 4, 0));
        assert!(Trace::from_records("bad", vec![a, b]).is_err());
        assert!(Trace::from_records("good", vec![b, a]).is_ok());
    }

    #[test]
    fn validate_catches_misaligned_sizes() {
        let mut t = Trace::new("t");
        t.push_request(IoRequest::new(
            0,
            SimTime::ZERO,
            Direction::Write,
            Bytes::new(1000),
            0,
        ));
        assert!(t.validate().is_err());
    }

    #[test]
    fn replay_state_round_trip() {
        let mut t = Trace::new("t");
        t.push_request(req(0, 0, Direction::Write, 4, 0));
        assert!(!t.is_replayed());
        t.records_mut()[0] = t.records()[0]
            .with_service_start(SimTime::from_ms(0))
            .with_finish(SimTime::from_ms(2));
        assert!(t.is_replayed());
        t.reset_replay();
        assert!(!t.is_replayed());
    }

    #[test]
    #[should_panic(expected = "arrival order")]
    fn out_of_order_push_panics() {
        let mut t = Trace::new("t");
        t.push_request(req(0, 10, Direction::Read, 4, 0));
        t.push_request(req(1, 5, Direction::Read, 4, 0));
    }
}
