//! Streaming request sources.
//!
//! A [`Trace`] materializes every record up front, which makes replay
//! memory grow linearly with trace length. [`TraceSource`] abstracts
//! "a named, ordered stream of requests" so the device simulator can
//! replay arbitrarily long workloads — a synthetic generator producing
//! requests on the fly, or a cursor over an existing trace — at O(1)
//! resident memory.
//!
//! Sources yield requests in non-decreasing arrival order (the same FIFO
//! contract [`Trace::push`] enforces); the device's monotonicity auditor
//! checks this in debug/sanitized builds.

use crate::trace::Trace;
use hps_core::IoRequest;

/// A named, ordered stream of I/O requests.
///
/// Implementors yield requests one at a time in non-decreasing arrival
/// order. Unlike an `Iterator`, the trait is object-safe over a `&mut`
/// receiver and carries a workload name so replay metrics stay labeled.
pub trait TraceSource {
    /// The workload's name (labels replay metrics).
    fn name(&self) -> &str;

    /// The next request, or `None` when the stream is exhausted.
    fn next_request(&mut self) -> Option<IoRequest>;

    /// Total number of requests this source will yield, when known up
    /// front (a cursor over a materialized trace knows; an unbounded
    /// generator may not).
    fn len_hint(&self) -> Option<u64> {
        None
    }
}

/// A [`TraceSource`] cursoring over a materialized [`Trace`] — the bridge
/// that lets streaming replay consume existing traces (and lets tests
/// check stream-vs-materialized equivalence).
#[derive(Clone, Debug)]
pub struct TraceCursor<'a> {
    trace: &'a Trace,
    next: usize,
}

impl<'a> TraceCursor<'a> {
    /// Creates a cursor at the start of `trace`.
    pub fn new(trace: &'a Trace) -> Self {
        TraceCursor { trace, next: 0 }
    }
}

impl TraceSource for TraceCursor<'_> {
    fn name(&self) -> &str {
        self.trace.name()
    }

    fn next_request(&mut self) -> Option<IoRequest> {
        let record = self.trace.records().get(self.next)?;
        self.next += 1;
        Some(record.request)
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.trace.records().len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hps_core::{Bytes, Direction, SimTime};

    #[test]
    fn cursor_yields_requests_in_order() {
        let mut trace = Trace::new("t");
        for i in 0..3u64 {
            trace.push_request(IoRequest::new(
                i,
                SimTime::from_ms(i),
                Direction::Write,
                Bytes::kib(4),
                i * 4096,
            ));
        }
        let mut cursor = TraceCursor::new(&trace);
        assert_eq!(cursor.name(), "t");
        assert_eq!(cursor.len_hint(), Some(3));
        let mut ids = Vec::new();
        while let Some(req) = cursor.next_request() {
            ids.push(req.id);
        }
        assert_eq!(ids, vec![0, 1, 2]);
        assert!(cursor.next_request().is_none(), "stays exhausted");
    }
}
