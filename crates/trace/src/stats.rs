//! Table III and Table IV statistics.
//!
//! [`SizeStats`] computes every column of the paper's Table III (size-related
//! characteristics); [`TimingStats`] computes Table IV (timing-related
//! statistics). The locality definitions follow Section III-C verbatim:
//!
//! * **Spatial locality** — the percentage of requests whose starting address
//!   is exactly the ending address of the *previous* request (sequential
//!   access pairs).
//! * **Temporal locality** — the percentage of requests whose starting
//!   address was already accessed by an earlier request (an "address hit").

use crate::trace::Trace;
use hps_core::hash::FxHashSet;
use hps_core::{Bytes, RunningStats};

/// Size-related characteristics of one trace — Table III of the paper.
///
/// # Example
///
/// ```
/// use hps_core::{Bytes, Direction, IoRequest, SimTime};
/// use hps_trace::{SizeStats, Trace};
///
/// let mut t = Trace::new("x");
/// t.push_request(IoRequest::new(0, SimTime::ZERO, Direction::Write, Bytes::kib(4), 0));
/// t.push_request(IoRequest::new(1, SimTime::from_ms(1), Direction::Read, Bytes::kib(12), 8192));
/// let s = SizeStats::from_trace(&t);
/// assert_eq!(s.num_reqs, 2);
/// assert_eq!(s.data_size, Bytes::kib(16));
/// assert_eq!(s.write_req_pct, 50.0);
/// assert_eq!(s.write_size_pct, 25.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SizeStats {
    /// Trace name.
    pub name: String,
    /// Total bytes accessed (*Data Size*).
    pub data_size: Bytes,
    /// Total request count (*Number of Reqs.*).
    pub num_reqs: u64,
    /// Largest single request (*Max Size*).
    pub max_size: Bytes,
    /// Mean request size (*Ave. Size*).
    pub avg_size_kib: f64,
    /// Mean read request size (*Ave. R Size*); 0 when no reads.
    pub avg_read_size_kib: f64,
    /// Mean write request size (*Ave. W Size*); 0 when no writes.
    pub avg_write_size_kib: f64,
    /// Percentage of requests that are writes (*Write Reqs. Pct.*).
    pub write_req_pct: f64,
    /// Percentage of bytes that are written (*Write Size Pct.*).
    pub write_size_pct: f64,
}

impl SizeStats {
    /// Computes Table III's columns for a trace.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut all = RunningStats::new();
        let mut reads = RunningStats::new();
        let mut writes = RunningStats::new();
        let mut max_size = Bytes::ZERO;
        for r in trace {
            let kib = r.request.size.as_kib_f64();
            all.push(kib);
            match r.direction() {
                hps_core::Direction::Read => reads.push(kib),
                hps_core::Direction::Write => writes.push(kib),
            }
            max_size = max_size.max(r.request.size);
        }
        let total_kib = all.sum();
        let write_kib = writes.sum();
        SizeStats {
            name: trace.name().to_string(),
            data_size: trace.total_bytes(),
            num_reqs: all.count(),
            max_size,
            avg_size_kib: all.mean(),
            avg_read_size_kib: reads.mean(),
            avg_write_size_kib: writes.mean(),
            write_req_pct: pct(writes.count() as f64, all.count() as f64),
            write_size_pct: pct(write_kib, total_kib),
        }
    }
}

/// Timing-related statistics of one trace — Table IV of the paper.
///
/// The service/response/NoWait columns require a *replayed* trace (records
/// with service timestamps); on a raw trace they report zero.
#[derive(Clone, Debug, PartialEq)]
pub struct TimingStats {
    /// Trace name.
    pub name: String,
    /// Recording duration in seconds (*Recording Duration*).
    pub duration_s: f64,
    /// Requests per second (*Arrival Rate*).
    pub arrival_rate: f64,
    /// KiB accessed per second (*Access Rate*).
    pub access_rate_kib_s: f64,
    /// Percentage of requests served the instant they arrived
    /// (*NoWait Req. Ratio*).
    pub nowait_pct: f64,
    /// Mean service time in milliseconds (*Mean. Serv.*).
    pub mean_service_ms: f64,
    /// Mean response time in milliseconds (*Mean. Resp.*).
    pub mean_response_ms: f64,
    /// Sequential-pair percentage (*Spatial Locality*).
    pub spatial_locality_pct: f64,
    /// Address re-access percentage (*Temporal Locality*).
    pub temporal_locality_pct: f64,
    /// Mean inter-arrival time in milliseconds (used by Characteristic 6).
    pub mean_interarrival_ms: f64,
}

impl TimingStats {
    /// Computes Table IV's columns for a trace.
    pub fn from_trace(trace: &Trace) -> Self {
        let duration_s = trace.duration().as_secs_f64();
        let n = trace.len() as f64;

        let mut service = RunningStats::new();
        let mut response = RunningStats::new();
        let mut nowait = 0u64;
        let mut completed = 0u64;
        for r in trace {
            if let (Some(s), Some(resp)) = (r.service_time(), r.response_time()) {
                service.push(s.as_ms_f64());
                response.push(resp.as_ms_f64());
                completed += 1;
                if r.served_immediately() {
                    nowait += 1;
                }
            }
        }

        let mut interarrival = RunningStats::new();
        for w in trace.records().windows(2) {
            interarrival.push((w[1].arrival() - w[0].arrival()).as_ms_f64());
        }

        TimingStats {
            name: trace.name().to_string(),
            duration_s,
            arrival_rate: rate(n, duration_s),
            access_rate_kib_s: rate(trace.total_bytes().as_kib_f64(), duration_s),
            nowait_pct: pct(nowait as f64, completed as f64),
            mean_service_ms: service.mean(),
            mean_response_ms: response.mean(),
            spatial_locality_pct: spatial_locality(trace),
            temporal_locality_pct: temporal_locality(trace),
            mean_interarrival_ms: interarrival.mean(),
        }
    }
}

/// Spatial locality (Section III-C): percentage of requests whose starting
/// address equals the previous request's ending address.
pub fn spatial_locality(trace: &Trace) -> f64 {
    if trace.len() < 2 {
        return 0.0;
    }
    let sequential = trace
        .records()
        .windows(2)
        .filter(|w| w[0].request.is_sequential_predecessor_of(&w[1].request))
        .count();
    pct(sequential as f64, trace.len() as f64)
}

/// Temporal locality (Section III-C): percentage of requests whose starting
/// 4 KiB page was covered by an earlier request (an address hit).
pub fn temporal_locality(trace: &Trace) -> f64 {
    const PAGE: u64 = 4096;
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    let mut hits = 0u64;
    for r in trace {
        let start_page = r.request.lba / PAGE;
        if seen.contains(&start_page) {
            hits += 1;
        }
        let pages = r.request.page_span(Bytes::new(PAGE));
        for p in 0..pages {
            seen.insert(start_page + p);
        }
    }
    pct(hits as f64, trace.len() as f64)
}

fn pct(part: f64, whole: f64) -> f64 {
    if whole == 0.0 {
        0.0
    } else {
        100.0 * part / whole
    }
}

fn rate(amount: f64, seconds: f64) -> f64 {
    if seconds == 0.0 {
        0.0
    } else {
        amount / seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hps_core::{Direction, IoRequest, SimTime};

    fn push(t: &mut Trace, ms: u64, dir: Direction, kib: u64, lba: u64) {
        let id = t.len() as u64;
        t.push_request(IoRequest::new(
            id,
            SimTime::from_ms(ms),
            dir,
            Bytes::kib(kib),
            lba,
        ));
    }

    #[test]
    fn size_stats_columns() {
        let mut t = Trace::new("s");
        push(&mut t, 0, Direction::Write, 4, 0);
        push(&mut t, 1, Direction::Write, 8, 4096);
        push(&mut t, 2, Direction::Read, 24, 65536);
        let s = SizeStats::from_trace(&t);
        assert_eq!(s.num_reqs, 3);
        assert_eq!(s.data_size, Bytes::kib(36));
        assert_eq!(s.max_size, Bytes::kib(24));
        assert!((s.avg_size_kib - 12.0).abs() < 1e-9);
        assert!((s.avg_read_size_kib - 24.0).abs() < 1e-9);
        assert!((s.avg_write_size_kib - 6.0).abs() < 1e-9);
        assert!((s.write_req_pct - 200.0 / 3.0).abs() < 1e-9);
        assert!((s.write_size_pct - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn size_stats_empty_trace() {
        let s = SizeStats::from_trace(&Trace::new("e"));
        assert_eq!(s.num_reqs, 0);
        assert_eq!(s.write_req_pct, 0.0);
        assert_eq!(s.avg_size_kib, 0.0);
    }

    #[test]
    fn spatial_locality_counts_sequential_pairs() {
        let mut t = Trace::new("sp");
        push(&mut t, 0, Direction::Write, 4, 0); // ends at 4096
        push(&mut t, 1, Direction::Write, 4, 4096); // sequential
        push(&mut t, 2, Direction::Write, 4, 100_000); // jump
        push(&mut t, 3, Direction::Write, 4, 104096); // sequential again
        assert!((spatial_locality(&t) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn temporal_locality_counts_reaccess() {
        let mut t = Trace::new("tp");
        push(&mut t, 0, Direction::Write, 8, 0); // covers pages 0,1
        push(&mut t, 1, Direction::Read, 4, 4096); // page 1 -> hit
        push(&mut t, 2, Direction::Read, 4, 40960); // fresh
        push(&mut t, 3, Direction::Write, 4, 0); // page 0 -> hit
        assert!((temporal_locality(&t) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn timing_stats_rates() {
        let mut t = Trace::new("r");
        push(&mut t, 0, Direction::Write, 4, 0);
        push(&mut t, 1000, Direction::Write, 4, 8192);
        push(&mut t, 2000, Direction::Write, 4, 16384);
        let s = TimingStats::from_trace(&t);
        assert!((s.duration_s - 2.0).abs() < 1e-9);
        assert!((s.arrival_rate - 1.5).abs() < 1e-9);
        assert!((s.access_rate_kib_s - 6.0).abs() < 1e-9);
        assert!((s.mean_interarrival_ms - 1000.0).abs() < 1e-9);
        // Raw trace: no service columns.
        assert_eq!(s.nowait_pct, 0.0);
        assert_eq!(s.mean_service_ms, 0.0);
    }

    #[test]
    fn timing_stats_after_replay() {
        let mut t = Trace::new("r");
        push(&mut t, 0, Direction::Write, 4, 0);
        push(&mut t, 10, Direction::Write, 4, 8192);
        {
            let recs = t.records_mut();
            recs[0] = recs[0]
                .with_service_start(SimTime::from_ms(0))
                .with_finish(SimTime::from_ms(2));
            recs[1] = recs[1]
                .with_service_start(SimTime::from_ms(12))
                .with_finish(SimTime::from_ms(14));
        }
        let s = TimingStats::from_trace(&t);
        assert_eq!(s.nowait_pct, 50.0);
        assert!((s.mean_service_ms - 2.0).abs() < 1e-9);
        assert!((s.mean_response_ms - 3.0).abs() < 1e-9);
    }

    #[test]
    fn single_record_has_no_pairs() {
        let mut t = Trace::new("one");
        push(&mut t, 0, Direction::Read, 4, 0);
        assert_eq!(spatial_locality(&t), 0.0);
        let s = TimingStats::from_trace(&t);
        assert_eq!(s.mean_interarrival_ms, 0.0);
        assert_eq!(s.arrival_rate, 0.0); // zero duration
    }
}
