//! Block-level I/O traces in the BIOtracer model.
//!
//! The paper's BIOtracer records three timestamps per request (Fig. 2):
//! arrival at the block layer, the moment the request is actually issued to
//! the device ("service start"), and completion. From those it derives the
//! quantities of Tables III and IV: response time (finish − arrival),
//! service time (finish − service start), wait time, the NoWait ratio, and
//! the spatial/temporal localities.
//!
//! * [`record`] — one trace record (request + timestamps).
//! * [`trace`] — an ordered collection of records with validation.
//! * [`source`] — streaming request sources ([`TraceSource`]), so replay
//!   does not require materializing a trace in memory.
//! * [`io`] — a plain-text CSV serialization so traces can be saved,
//!   inspected, and replayed.
//! * [`stats`] — every column of Table III ([`SizeStats`]) and Table IV
//!   ([`TimingStats`]).
//! * [`distributions`] — the bucketing conventions of Figs. 4, 5, and 6.

pub mod distributions;
pub mod io;
pub mod record;
pub mod source;
pub mod stats;
pub mod trace;

pub use distributions::{
    bucket_labels, interarrival_histogram, response_histogram, size_histogram,
    small_request_fraction, INTERARRIVAL_EDGES_MS, RESPONSE_EDGES_MS, SIZE_EDGES_KIB,
};
pub use record::TraceRecord;
pub use source::{TraceCursor, TraceSource};
pub use stats::{SizeStats, TimingStats};
pub use trace::Trace;
