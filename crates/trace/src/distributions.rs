//! Bucketing conventions of Figs. 4, 5, and 6.
//!
//! The paper categorizes request sizes, response times, and inter-arrival
//! times into fixed ranges. The canonical edges below are used by every
//! figure-reproduction bench so the distributions are comparable across
//! traces and schemes.

use crate::trace::Trace;
use hps_core::Histogram;

/// Fig. 4 size buckets, in KiB: ≤4, ≤8, ≤16, ≤64, ≤256, >256.
pub const SIZE_EDGES_KIB: [f64; 5] = [4.0, 8.0, 16.0, 64.0, 256.0];

/// Fig. 5 response-time buckets, in ms: ≤1, ≤2, ≤4, ≤8, ≤16, ≤32, ≤64,
/// ≤128, >128.
pub const RESPONSE_EDGES_MS: [f64; 8] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

/// Fig. 6 inter-arrival buckets, in ms: ≤1, ≤4, ≤16, ≤64, ≤256, ≤1024,
/// >1024.
pub const INTERARRIVAL_EDGES_MS: [f64; 6] = [1.0, 4.0, 16.0, 64.0, 256.0, 1024.0];

/// Human-readable labels for the buckets of a histogram built over `edges`
/// with the given unit suffix, e.g. `["<=4KB", "<=8KB", ..., ">256KB"]`.
pub fn bucket_labels(edges: &[f64], unit: &str) -> Vec<String> {
    let mut labels: Vec<String> = edges
        .iter()
        .map(|e| format!("<={}{}", trim_float(*e), unit))
        .collect();
    if let Some(last) = edges.last() {
        labels.push(format!(">{}{}", trim_float(*last), unit));
    }
    labels
}

fn trim_float(x: f64) -> String {
    if x.fract() == 0.0 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

/// Request-size distribution of a trace in the Fig. 4 buckets.
pub fn size_histogram(trace: &Trace) -> Histogram {
    let mut h = Histogram::new(&SIZE_EDGES_KIB);
    for r in trace {
        h.push(r.request.size.as_kib_f64());
    }
    h
}

/// Response-time distribution (Fig. 5); only completed (replayed) records
/// contribute.
pub fn response_histogram(trace: &Trace) -> Histogram {
    let mut h = Histogram::new(&RESPONSE_EDGES_MS);
    for r in trace {
        if let Some(resp) = r.response_time() {
            h.push(resp.as_ms_f64());
        }
    }
    h
}

/// Inter-arrival-time distribution (Fig. 6): one sample per consecutive
/// arrival pair.
pub fn interarrival_histogram(trace: &Trace) -> Histogram {
    let mut h = Histogram::new(&INTERARRIVAL_EDGES_MS);
    for w in trace.records().windows(2) {
        h.push((w[1].arrival() - w[0].arrival()).as_ms_f64());
    }
    h
}

/// Fraction of a trace's requests that are exactly one 4 KiB page — the
/// quantity behind Characteristic 2 ("44.9%–57.4% are small requests").
pub fn small_request_fraction(trace: &Trace) -> f64 {
    if trace.is_empty() {
        return 0.0;
    }
    let small = trace.iter().filter(|r| r.request.is_small()).count();
    small as f64 / trace.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hps_core::{Bytes, Direction, IoRequest, SimTime};

    fn push(t: &mut Trace, ms: u64, kib: u64) {
        let id = t.len() as u64;
        t.push_request(IoRequest::new(
            id,
            SimTime::from_ms(ms),
            Direction::Write,
            Bytes::kib(kib),
            id * 1_000_000,
        ));
    }

    #[test]
    fn size_histogram_buckets() {
        let mut t = Trace::new("s");
        for (ms, kib) in [(0, 4), (1, 4), (2, 8), (3, 32), (4, 512)] {
            push(&mut t, ms, kib);
        }
        let h = size_histogram(&t);
        assert_eq!(h.counts(), &[2, 1, 0, 1, 0, 1]);
        assert!((h.fraction(0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn small_fraction_matches_first_bucket() {
        let mut t = Trace::new("s");
        for (ms, kib) in [(0, 4), (1, 8), (2, 4), (3, 16)] {
            push(&mut t, ms, kib);
        }
        assert!((small_request_fraction(&t) - 0.5).abs() < 1e-12);
        assert_eq!(small_request_fraction(&Trace::new("e")), 0.0);
    }

    #[test]
    fn interarrival_histogram_counts_gaps() {
        let mut t = Trace::new("ia");
        for ms in [0, 1, 3, 103] {
            push(&mut t, ms, 4);
        }
        let h = interarrival_histogram(&t);
        // gaps: 1ms, 2ms, 100ms
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts()[0], 1); // <=1ms
        assert_eq!(h.counts()[1], 1); // <=4ms
        assert_eq!(h.counts()[4], 1); // <=256ms
    }

    #[test]
    fn response_histogram_skips_raw_records() {
        let mut t = Trace::new("r");
        push(&mut t, 0, 4);
        push(&mut t, 10, 4);
        {
            let recs = t.records_mut();
            recs[0] = recs[0]
                .with_service_start(SimTime::from_ms(0))
                .with_finish(SimTime::from_ms(3));
        }
        let h = response_histogram(&t);
        assert_eq!(h.total(), 1);
        assert_eq!(h.counts()[2], 1); // 3ms -> <=4ms bucket
    }

    #[test]
    fn labels_match_bucket_count() {
        let labels = bucket_labels(&SIZE_EDGES_KIB, "KB");
        assert_eq!(labels.len(), SIZE_EDGES_KIB.len() + 1);
        assert_eq!(labels[0], "<=4KB");
        assert_eq!(labels.last().unwrap(), ">256KB");
    }
}
