//! One BIOtracer record: a request and its three timestamps.

use core::fmt;
use hps_core::{Direction, IoRequest, SimDuration, SimTime};

/// A block-level request together with the timestamps BIOtracer captures
/// (Fig. 2 of the paper): arrival at the block layer, service start at the
/// device, and finish.
///
/// A record fresh out of a workload generator has no timestamps beyond
/// `request.arrival`; replaying the trace through the device simulator fills
/// in `service_start` and `finish`.
///
/// # Example
///
/// ```
/// use hps_core::{Bytes, Direction, IoRequest, SimTime};
/// use hps_trace::TraceRecord;
///
/// let req = IoRequest::new(0, SimTime::from_ms(10), Direction::Write, Bytes::kib(4), 0);
/// let rec = TraceRecord::new(req)
///     .with_service_start(SimTime::from_ms(11))
///     .with_finish(SimTime::from_ms(13));
/// assert_eq!(rec.response_time().unwrap().as_ms(), 3);
/// assert_eq!(rec.service_time().unwrap().as_ms(), 2);
/// assert_eq!(rec.wait_time().unwrap().as_ms(), 1);
/// assert!(!rec.served_immediately());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// The request as created at the block layer.
    pub request: IoRequest,
    /// When the request was actually issued to the eMMC device (BIOtracer
    /// step 2); `None` until the trace has been replayed.
    pub service_start: Option<SimTime>,
    /// When the device completed the request (BIOtracer step 3).
    pub finish: Option<SimTime>,
}

impl TraceRecord {
    /// Wraps a raw request with no service timestamps yet.
    pub fn new(request: IoRequest) -> Self {
        TraceRecord {
            request,
            service_start: None,
            finish: None,
        }
    }

    /// Sets the service-start timestamp.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the request's arrival.
    pub fn with_service_start(mut self, t: SimTime) -> Self {
        assert!(
            t >= self.request.arrival,
            "service cannot start before arrival"
        );
        self.service_start = Some(t);
        self
    }

    /// Sets the finish timestamp.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the service start (or arrival, when no service
    /// start is recorded).
    pub fn with_finish(mut self, t: SimTime) -> Self {
        let floor = self.service_start.unwrap_or(self.request.arrival);
        assert!(t >= floor, "finish cannot precede service start");
        self.finish = Some(t);
        self
    }

    /// Request arrival time (BIOtracer step 1).
    pub fn arrival(&self) -> SimTime {
        self.request.arrival
    }

    /// Read or write.
    pub fn direction(&self) -> Direction {
        self.request.direction
    }

    /// `true` once both service timestamps are present.
    pub fn is_completed(&self) -> bool {
        self.service_start.is_some() && self.finish.is_some()
    }

    /// Response time: finish − arrival. `None` until completed.
    pub fn response_time(&self) -> Option<SimDuration> {
        Some(self.finish? - self.request.arrival)
    }

    /// Service time: finish − service start. `None` until completed.
    pub fn service_time(&self) -> Option<SimDuration> {
        Some(self.finish? - self.service_start?)
    }

    /// Wait time: service start − arrival. `None` until replayed.
    pub fn wait_time(&self) -> Option<SimDuration> {
        Some(self.service_start? - self.request.arrival)
    }

    /// The paper's "NoWait" predicate: the request was issued to the device
    /// the instant it arrived. `false` when not yet replayed.
    pub fn served_immediately(&self) -> bool {
        self.wait_time().is_some_and(|w| w.is_zero())
    }
}

impl From<IoRequest> for TraceRecord {
    fn from(request: IoRequest) -> Self {
        TraceRecord::new(request)
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.request)?;
        if let Some(r) = self.response_time() {
            write!(f, " resp={r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hps_core::Bytes;

    fn rec() -> TraceRecord {
        TraceRecord::new(IoRequest::new(
            1,
            SimTime::from_ms(100),
            Direction::Read,
            Bytes::kib(8),
            4096,
        ))
    }

    #[test]
    fn raw_record_has_no_derived_times() {
        let r = rec();
        assert!(!r.is_completed());
        assert_eq!(r.response_time(), None);
        assert_eq!(r.service_time(), None);
        assert_eq!(r.wait_time(), None);
        assert!(!r.served_immediately());
    }

    #[test]
    fn derived_times() {
        let r = rec()
            .with_service_start(SimTime::from_ms(100))
            .with_finish(SimTime::from_ms(104));
        assert!(r.is_completed());
        assert_eq!(r.response_time().unwrap().as_ms(), 4);
        assert_eq!(r.service_time().unwrap().as_ms(), 4);
        assert_eq!(r.wait_time().unwrap(), SimDuration::ZERO);
        assert!(r.served_immediately());
    }

    #[test]
    fn queued_request_is_not_nowait() {
        let r = rec()
            .with_service_start(SimTime::from_ms(102))
            .with_finish(SimTime::from_ms(104));
        assert!(!r.served_immediately());
        assert_eq!(r.wait_time().unwrap().as_ms(), 2);
    }

    #[test]
    #[should_panic(expected = "before arrival")]
    fn service_before_arrival_panics() {
        let _ = rec().with_service_start(SimTime::from_ms(99));
    }

    #[test]
    #[should_panic(expected = "precede service start")]
    fn finish_before_service_panics() {
        let _ = rec()
            .with_service_start(SimTime::from_ms(105))
            .with_finish(SimTime::from_ms(104));
    }
}
