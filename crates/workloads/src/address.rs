//! Address models with tunable spatial and temporal locality.
//!
//! Table IV publishes two locality numbers per trace, defined in Section
//! III-C: spatial locality is the fraction of requests that start exactly
//! where the previous request ended; temporal locality is the fraction
//! whose starting address was accessed before. [`AddressModel`] generates
//! addresses by a three-way choice — sequential continuation, re-access of
//! an earlier request's address, or a fresh never-touched address — and
//! keeps both measured statistics on target with closed-loop control:
//!
//! * the model tracks every page it has covered, so "fresh" draws are
//!   *guaranteed* misses (a bump pointer walks virgin territory) and
//!   re-accesses are *guaranteed* hits;
//! * sequential continuations sometimes land on covered pages as a side
//!   effect (e.g. the successor of a re-accessed region); the controller
//!   measures the actual hit rate and steers the explicit re-access
//!   probability to compensate, so the generated trace's localities match
//!   the table to within sampling noise.

use hps_core::hash::FxHashSet;
use hps_core::{Bytes, SimRng};

/// Stateful address generator for one application stream.
#[derive(Clone, Debug)]
pub struct AddressModel {
    /// Target unconditional probability of a sequential continuation.
    p_seq: f64,
    /// Target unconditional probability of an address re-access.
    p_reuse: f64,
    /// Addressable footprint in bytes (addresses are < footprint).
    footprint: Bytes,
    /// End address of the previous request.
    last_end: u64,
    /// Starting addresses of earlier requests (re-access candidates).
    history: Vec<u64>,
    /// Cap on history length (memory bound; re-accesses favour recency).
    history_cap: usize,
    /// Bump pointer for fresh addresses; always past every covered page.
    next_fresh: u64,
    /// Every 4 KiB page touched so far (the measurement's ground truth).
    covered: FxHashSet<u64>,
    /// Requests generated.
    total: u64,
    /// Requests that were sequential continuations.
    seq_count: u64,
    /// Requests whose starting page was already covered (temporal hits).
    hit_count: u64,
}

impl AddressModel {
    /// Creates a model targeting `spatial_pct` spatial and `temporal_pct`
    /// temporal locality (Table IV percentages) over a `footprint`-byte
    /// region.
    ///
    /// # Panics
    ///
    /// Panics if percentages are outside `[0, 100]`, their sum exceeds 100,
    /// or the footprint is smaller than 1 MiB.
    pub fn new(spatial_pct: f64, temporal_pct: f64, footprint: Bytes) -> Self {
        assert!(
            (0.0..=100.0).contains(&spatial_pct),
            "spatial pct out of range"
        );
        assert!(
            (0.0..=100.0).contains(&temporal_pct),
            "temporal pct out of range"
        );
        assert!(
            spatial_pct + temporal_pct <= 100.0,
            "locality targets exceed 100%"
        );
        assert!(
            footprint >= Bytes::mib(1),
            "footprint must be at least 1 MiB"
        );
        AddressModel {
            p_seq: spatial_pct / 100.0,
            p_reuse: temporal_pct / 100.0,
            footprint,
            last_end: 0,
            history: Vec::new(),
            history_cap: 4096,
            next_fresh: 0,
            covered: FxHashSet::default(),
            total: 0,
            seq_count: 0,
            hit_count: 0,
        }
    }

    /// Draws the starting address for a request of `size` bytes and
    /// advances the model state.
    pub fn sample(&mut self, rng: &mut SimRng, size: Bytes) -> u64 {
        let max_start_page = (self.footprint.as_u64().saturating_sub(size.as_u64())) / 4096;
        let have_history = !self.history.is_empty();

        // Closed-loop steering with gain: p_eff = target − k·(measured −
        // target). A high gain squeezes the equilibrium bias from
        // incidental hits (sequential successors landing on covered pages)
        // down to noise level.
        const GAIN: f64 = 8.0;
        let total = self.total.max(1) as f64;
        let seq_measured = self.seq_count as f64 / total;
        let hit_measured = self.hit_count as f64 / total;
        let p_seq_eff = (self.p_seq - GAIN * (seq_measured - self.p_seq)).clamp(0.0, 1.0);
        let p_hit_eff = (self.p_reuse - GAIN * (hit_measured - self.p_reuse)).clamp(0.0, 1.0);
        // The reuse branch is only reached when not sequential.
        let p_reuse_cond = if p_seq_eff >= 1.0 {
            0.0
        } else {
            (p_hit_eff / (1.0 - p_seq_eff)).clamp(0.0, 1.0)
        };

        let mut is_seq = false;
        let start = if have_history && rng.chance(p_seq_eff) {
            is_seq = true;
            if self.last_end / 4096 <= max_start_page {
                self.last_end
            } else {
                0 // wrapped at the footprint edge; still "sequential intent"
            }
        } else if have_history && rng.chance(p_reuse_cond) {
            *rng.pick(&self.history)
        } else {
            self.fresh_address(rng, max_start_page)
        };

        // Account against the *measured* definitions.
        if is_seq {
            self.seq_count += 1;
        }
        if self.covered.contains(&(start / 4096)) {
            self.hit_count += 1;
        }
        self.total += 1;

        self.last_end = start + size.as_u64();
        self.next_fresh = self.next_fresh.max(self.last_end);
        let pages = size.div_ceil(Bytes::kib(4));
        for p in 0..pages {
            self.covered.insert(start / 4096 + p);
        }
        if self.history.len() == self.history_cap {
            let slot = rng.uniform_u64(self.history_cap as u64) as usize;
            self.history[slot] = start;
        } else {
            self.history.push(start);
        }
        start
    }

    /// A never-covered starting address: bump pointer plus a random 1–64
    /// page stride, wrapping at the footprint edge (and skipping covered
    /// pages after a wrap).
    fn fresh_address(&mut self, rng: &mut SimRng, max_start_page: u64) -> u64 {
        let stride_pages = rng.uniform_range(1, 64);
        let mut page = self.next_fresh / 4096 + stride_pages;
        if page > max_start_page {
            page = 0;
        }
        // After a wrap the low region is covered; skip forward, at most one
        // pass around the ring — and not at all once the whole footprint is
        // covered (then truly fresh pages no longer exist).
        if (self.covered.len() as u64) <= max_start_page {
            let mut scanned = 0u64;
            while self.covered.contains(&page) && scanned <= max_start_page {
                page += 1;
                scanned += 1;
                if page > max_start_page {
                    page = 0;
                }
            }
        }
        let addr = page * 4096;
        self.next_fresh = addr;
        addr
    }

    /// The configured footprint.
    pub fn footprint(&self) -> Bytes {
        self.footprint
    }

    /// Measured spatial locality so far, in percent.
    pub fn measured_spatial_pct(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.seq_count as f64 / self.total as f64
        }
    }

    /// Measured temporal locality so far, in percent.
    pub fn measured_temporal_pct(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.hit_count as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hps_core::{Direction, IoRequest, SimTime};
    use hps_trace::{stats, Trace};

    fn run_trace(spatial: f64, temporal: f64, n: usize) -> Trace {
        let mut model = AddressModel::new(spatial, temporal, Bytes::gib(1));
        let mut rng = SimRng::seed_from(11);
        let mut trace = Trace::new("addr");
        for i in 0..n {
            let size = Bytes::kib(4);
            let lba = model.sample(&mut rng, size);
            trace.push_request(IoRequest::new(
                i as u64,
                SimTime::from_ms(i as u64),
                Direction::Write,
                size,
                lba,
            ));
        }
        trace
    }

    #[test]
    fn measured_spatial_locality_matches_target() {
        let trace = run_trace(30.0, 20.0, 20_000);
        let measured = stats::spatial_locality(&trace);
        assert!((measured - 30.0).abs() < 2.0, "spatial {measured}");
    }

    #[test]
    fn measured_temporal_locality_matches_target() {
        let trace = run_trace(25.0, 40.0, 20_000);
        let measured = stats::temporal_locality(&trace);
        assert!((measured - 40.0).abs() < 2.0, "temporal {measured}");
    }

    #[test]
    fn mixed_sizes_still_match_targets() {
        let mut model = AddressModel::new(22.0, 45.0, Bytes::gib(2));
        let mut rng = SimRng::seed_from(13);
        let mut trace = Trace::new("mixed");
        for i in 0..20_000u64 {
            let size = Bytes::kib(*rng.pick(&[4u64, 8, 16, 64]));
            let lba = model.sample(&mut rng, size);
            trace.push_request(IoRequest::new(
                i,
                SimTime::from_ms(i),
                Direction::Write,
                size,
                lba,
            ));
        }
        let sp = stats::spatial_locality(&trace);
        let tp = stats::temporal_locality(&trace);
        assert!((sp - 22.0).abs() < 2.0, "spatial {sp}");
        assert!((tp - 45.0).abs() < 2.0, "temporal {tp}");
    }

    #[test]
    fn zero_locality_is_mostly_random() {
        let trace = run_trace(0.0, 0.0, 10_000);
        assert!(stats::spatial_locality(&trace) < 1.0);
        assert!(stats::temporal_locality(&trace) < 1.0);
    }

    #[test]
    fn internal_counters_agree_with_external_measurement() {
        let mut model = AddressModel::new(20.0, 30.0, Bytes::gib(1));
        let mut rng = SimRng::seed_from(17);
        let mut trace = Trace::new("agree");
        for i in 0..5_000u64 {
            let size = Bytes::kib(4);
            let lba = model.sample(&mut rng, size);
            trace.push_request(IoRequest::new(
                i,
                SimTime::from_ms(i),
                Direction::Write,
                size,
                lba,
            ));
        }
        assert!((model.measured_temporal_pct() - stats::temporal_locality(&trace)).abs() < 1e-9);
    }

    #[test]
    fn addresses_stay_in_footprint() {
        let mut model = AddressModel::new(20.0, 20.0, Bytes::mib(64));
        let mut rng = SimRng::seed_from(5);
        for _ in 0..10_000 {
            let size = Bytes::kib(64);
            let lba = model.sample(&mut rng, size);
            assert!(lba + size.as_u64() <= Bytes::mib(64).as_u64());
            assert_eq!(lba % 4096, 0, "4 KiB aligned");
        }
    }

    #[test]
    fn history_is_bounded() {
        let mut model = AddressModel::new(0.0, 50.0, Bytes::gib(1));
        let mut rng = SimRng::seed_from(6);
        for _ in 0..10_000 {
            model.sample(&mut rng, Bytes::kib(4));
        }
        assert!(model.history.len() <= model.history_cap);
    }

    #[test]
    #[should_panic(expected = "exceed 100%")]
    fn inconsistent_targets_panic() {
        let _ = AddressModel::new(60.0, 60.0, Bytes::gib(1));
    }
}
