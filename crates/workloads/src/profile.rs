//! The per-application workload parameter record.
//!
//! An [`AppProfile`] embeds the published statistics of one of the paper's
//! 18 traces (Tables III and IV) plus the two free shape parameters the
//! tables do not pin down (burstiness of the arrival process and the Fig. 4
//! single-page fraction). [`crate::generator::generate`] turns a profile
//! into a concrete trace.

use crate::address::AddressModel;
use crate::arrival::ArrivalModel;
use crate::size::SizeModel;
use hps_core::Bytes;

/// Hand-tuned size-distribution override for the apps whose Fig. 4 shape
/// deviates from the generic spike-plus-tail (e.g. Movie's 16–64 KiB hump).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SizeShape {
    /// Use [`SizeModel::calibrated`] from the profile's `frac_4k`,
    /// per-direction mean, and max.
    Calibrated,
    /// Explicit `(size_kib, weight)` entries for reads and writes.
    Custom {
        /// Read-size entries.
        read: &'static [(u64, f64)],
        /// Write-size entries.
        write: &'static [(u64, f64)],
    },
}

/// All parameters needed to regenerate one application's trace.
#[derive(Clone, Debug)]
pub struct AppProfile {
    /// Application name as it appears in the paper's tables.
    pub name: &'static str,
    /// Table III *Number of Reqs.*
    pub num_reqs: u64,
    /// Table IV *Recording Duration* (seconds).
    pub duration_s: f64,
    /// Table III *Write Reqs. Pct.* (0–100).
    pub write_req_pct: f64,
    /// Table III *Ave. R Size* (KiB).
    pub avg_read_kib: f64,
    /// Table III *Ave. W Size* (KiB).
    pub avg_write_kib: f64,
    /// Table III *Max Size* (KiB).
    pub max_kib: u64,
    /// Fig. 4 single-page (4 KiB) request fraction (0–1).
    pub frac_4k: f64,
    /// Table IV *Spatial Locality* (0–100).
    pub spatial_pct: f64,
    /// Table IV *Temporal Locality* (0–100).
    pub temporal_pct: f64,
    /// Fraction of inter-arrival gaps in the burst component (0–1).
    pub burst_frac: f64,
    /// Mean gap of the burst component, milliseconds (Fig. 6 shape: Movie
    /// bursts are sub-millisecond, online apps burst at several ms).
    pub burst_mean_ms: f64,
    /// Lognormal sigma of the gap components (burstiness spread).
    pub sigma: f64,
    /// Size-distribution shape.
    pub shape: SizeShape,
}

impl AppProfile {
    /// The read-size model for this application.
    ///
    /// # Panics
    ///
    /// Panics if the profile's calibration targets are inconsistent.
    pub fn read_size_model(&self) -> SizeModel {
        match self.shape {
            SizeShape::Calibrated => {
                SizeModel::calibrated(self.frac_4k, self.avg_read_kib.max(4.0), self.max_kib)
            }
            SizeShape::Custom { read, .. } => SizeModel::from_entries(read),
        }
    }

    /// The write-size model for this application.
    ///
    /// # Panics
    ///
    /// Panics if the profile's calibration targets are inconsistent.
    pub fn write_size_model(&self) -> SizeModel {
        match self.shape {
            SizeShape::Calibrated => {
                SizeModel::calibrated(self.frac_4k, self.avg_write_kib.max(4.0), self.max_kib)
            }
            SizeShape::Custom { write, .. } => SizeModel::from_entries(write),
        }
    }

    /// The arrival model: mean gap solved from duration and request count.
    ///
    /// # Panics
    ///
    /// Panics if the profile has fewer than two requests.
    pub fn arrival_model(&self) -> ArrivalModel {
        assert!(self.num_reqs >= 2, "profile needs at least two requests");
        let mean_gap_ms = self.duration_s * 1e3 / (self.num_reqs - 1) as f64;
        ArrivalModel::new(mean_gap_ms, self.burst_frac, self.burst_mean_ms, self.sigma)
    }

    /// The address model over this application's footprint.
    pub fn address_model(&self) -> AddressModel {
        AddressModel::new(self.spatial_pct, self.temporal_pct, self.footprint())
    }

    /// Expected total bytes moved (mix-weighted mean size × request count).
    pub fn expected_data(&self) -> Bytes {
        let w = self.write_req_pct / 100.0;
        let mean_kib = w * self.avg_write_kib + (1.0 - w) * self.avg_read_kib;
        Bytes::kib((mean_kib * self.num_reqs as f64) as u64)
    }

    /// Address footprint: four times the expected data, at least 64 MiB, at
    /// most 16 GiB (inside the 32 GiB device of Table V).
    pub fn footprint(&self) -> Bytes {
        let four_x = Bytes::new(self.expected_data().as_u64().saturating_mul(4));
        four_x.max(Bytes::mib(64)).min(Bytes::gib(16))
    }

    /// Mean request arrival rate (requests/second), Table IV column 3.
    pub fn arrival_rate(&self) -> f64 {
        if self.duration_s == 0.0 {
            0.0
        } else {
            self.num_reqs as f64 / self.duration_s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> AppProfile {
        AppProfile {
            name: "Test",
            num_reqs: 1000,
            duration_s: 100.0,
            write_req_pct: 80.0,
            avg_read_kib: 20.0,
            avg_write_kib: 10.0,
            max_kib: 1024,
            frac_4k: 0.5,
            spatial_pct: 25.0,
            temporal_pct: 35.0,
            burst_frac: 0.6,
            burst_mean_ms: 2.0,
            sigma: 1.0,
            shape: SizeShape::Calibrated,
        }
    }

    #[test]
    fn models_build_and_match_targets() {
        let p = sample_profile();
        let r = p.read_size_model();
        let w = p.write_size_model();
        assert!((r.mean_kib() - 20.0).abs() / 20.0 < 0.08);
        assert!((w.mean_kib() - 10.0).abs() / 10.0 < 0.08);
        let a = p.arrival_model();
        let expected_gap = 100_000.0 / 999.0;
        assert!((a.mean_gap_ms() - expected_gap).abs() < 1e-6);
    }

    #[test]
    fn expected_data_mixes_directions() {
        let p = sample_profile();
        // 0.8×10 + 0.2×20 = 12 KiB mean × 1000 reqs.
        assert_eq!(p.expected_data(), Bytes::kib(12_000));
    }

    #[test]
    fn footprint_floors_at_64_mib() {
        let p = sample_profile();
        assert_eq!(p.footprint(), Bytes::mib(64), "4×12 MB < 64 MiB floor");
    }

    #[test]
    fn arrival_rate() {
        let p = sample_profile();
        assert!((p.arrival_rate() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn custom_shape_uses_entries() {
        let mut p = sample_profile();
        p.shape = SizeShape::Custom {
            read: &[(32, 1.0)],
            write: &[(4, 1.0)],
        };
        assert_eq!(p.read_size_model().mean_kib(), 32.0);
        assert_eq!(p.write_size_model().mean_kib(), 4.0);
    }
}
