//! Inter-arrival-time models.
//!
//! Smartphone I/O is bursty: requests cluster (an application flushing a
//! SQLite transaction issues several requests back-to-back) separated by
//! long think times (Characteristic 6: 13 of 18 applications average over
//! 200 ms between requests). [`ArrivalModel`] is a two-component lognormal
//! mixture — a *burst* component with millisecond-scale gaps and a *think*
//! component solved so the overall mean matches the published recording
//! duration and request count.

use hps_core::{SimDuration, SimRng};

/// Two-component lognormal inter-arrival model.
#[derive(Clone, Debug)]
pub struct ArrivalModel {
    /// Probability that a gap belongs to the burst component.
    burst_frac: f64,
    /// Mean gap of the burst component, ms.
    burst_mean_ms: f64,
    /// Mean gap of the think component, ms (solved from the overall target).
    think_mean_ms: f64,
    /// Lognormal sigma for both components (burstiness knob).
    sigma: f64,
}

impl ArrivalModel {
    /// Builds a model whose *overall* mean gap is `mean_gap_ms`, with
    /// `burst_frac` of gaps drawn from a fast component with mean
    /// `burst_mean_ms`.
    ///
    /// The think-component mean is solved as
    /// `(mean − p·burst_mean) / (1 − p)`; if the targets are inconsistent
    /// (the burst component alone exceeds the overall mean), the burst mean
    /// is shrunk to half the overall mean first.
    ///
    /// # Panics
    ///
    /// Panics if `mean_gap_ms` is not positive or `burst_frac` is outside
    /// `[0, 1)`.
    pub fn new(mean_gap_ms: f64, burst_frac: f64, burst_mean_ms: f64, sigma: f64) -> Self {
        assert!(mean_gap_ms > 0.0, "mean gap must be positive");
        assert!(
            (0.0..1.0).contains(&burst_frac),
            "burst fraction must be in [0, 1)"
        );
        let burst_mean_ms = if burst_frac > 0.0 && burst_mean_ms * burst_frac >= mean_gap_ms {
            mean_gap_ms / 2.0
        } else {
            burst_mean_ms
        };
        let think_mean_ms = if burst_frac == 0.0 {
            mean_gap_ms
        } else {
            (mean_gap_ms - burst_frac * burst_mean_ms) / (1.0 - burst_frac)
        };
        ArrivalModel {
            burst_frac,
            burst_mean_ms,
            think_mean_ms,
            sigma,
        }
    }

    /// The model's exact overall mean gap in milliseconds.
    pub fn mean_gap_ms(&self) -> f64 {
        self.burst_frac * self.burst_mean_ms + (1.0 - self.burst_frac) * self.think_mean_ms
    }

    /// Draws one inter-arrival gap.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        let mean = if rng.chance(self.burst_frac) {
            self.burst_mean_ms
        } else {
            self.think_mean_ms
        };
        let ms = rng.lognormal_with_mean(mean, self.sigma);
        SimDuration::from_secs_f64((ms / 1e3).min(7_200.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overall_mean_matches_target() {
        let m = ArrivalModel::new(200.0, 0.6, 2.0, 1.0);
        assert!((m.mean_gap_ms() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn sampled_mean_converges() {
        let m = ArrivalModel::new(50.0, 0.5, 2.0, 1.0);
        let mut rng = SimRng::seed_from(3);
        let n = 200_000;
        let total: f64 = (0..n).map(|_| m.sample(&mut rng).as_secs_f64() * 1e3).sum();
        let mean = total / n as f64;
        assert!((mean - 50.0).abs() / 50.0 < 0.05, "mean {mean}");
    }

    #[test]
    fn bursty_model_has_many_small_and_some_huge_gaps() {
        let m = ArrivalModel::new(200.0, 0.7, 2.0, 1.2);
        let mut rng = SimRng::seed_from(4);
        let samples: Vec<f64> = (0..10_000)
            .map(|_| m.sample(&mut rng).as_secs_f64() * 1e3)
            .collect();
        let small = samples.iter().filter(|&&g| g <= 16.0).count() as f64 / 10_000.0;
        let large = samples.iter().filter(|&&g| g > 16.0).count() as f64 / 10_000.0;
        assert!(small > 0.5, "bursts dominate counts: {small}");
        assert!(
            large > 0.2,
            "Characteristic 6: >20% of gaps above 16 ms, got {large}"
        );
    }

    #[test]
    fn inconsistent_targets_are_repaired() {
        // Burst mean 10 ms with p=0.9 exceeds overall mean 5 ms.
        let m = ArrivalModel::new(5.0, 0.9, 10.0, 1.0);
        assert!((m.mean_gap_ms() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn zero_burst_fraction_is_single_component() {
        let m = ArrivalModel::new(1000.0, 0.0, 2.0, 0.8);
        assert!((m.mean_gap_ms() - 1000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mean_panics() {
        let _ = ArrivalModel::new(0.0, 0.5, 2.0, 1.0);
    }
}
