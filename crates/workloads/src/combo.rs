//! Concurrent-application (combo) traces.
//!
//! The paper's 7 combo traces come from genuinely concurrent runs (Music
//! while WebBrowsing, etc.), and their Table III/IV rows differ from any
//! statistical mixture of the member applications — shared buffers raise
//! the combined request and data rates. The default combo generation
//! therefore uses the combo's *own* table row ([`crate::profiles`]); this
//! module adds the complementary tool: [`merge_traces`], a true
//! time-interleaved merge of two member traces, used by the concurrency
//! example and the Fig. 7 cross-check.

use crate::generator::generate;
use crate::profile::AppProfile;
use crate::profiles;
use hps_core::IoRequest;
use hps_trace::{Trace, TraceRecord};

/// A combo definition: which table row it owns and which two members
/// compose it.
#[derive(Clone, Debug)]
pub struct ComboProfile {
    /// The combo's own Table III/IV row.
    pub profile: AppProfile,
    /// First member's individual profile.
    pub member_a: AppProfile,
    /// Second member's individual profile.
    pub member_b: AppProfile,
}

/// The 7 combos with their member applications.
pub fn all_combo_definitions() -> Vec<ComboProfile> {
    let combos = profiles::all_combos();
    let members: [(&str, &str); 7] = [
        ("Music", "WebBrowsing"),
        ("Radio", "WebBrowsing"),
        ("Music", "Facebook"),
        ("Radio", "Facebook"),
        ("Music", "Messaging"),
        ("Radio", "Messaging"),
        ("Facebook", "Messaging"),
    ];
    combos
        .into_iter()
        .zip(members)
        .map(|(profile, (a, b))| ComboProfile {
            profile,
            // lint: allow(no-unwrap) -- infallible by construction; the message documents the invariant
            member_a: profiles::by_name(a).expect("member exists"),
            // lint: allow(no-unwrap) -- infallible by construction; the message documents the invariant
            member_b: profiles::by_name(b).expect("member exists"),
        })
        .collect()
}

/// Generates a combo trace from its own table row (the default, matching
/// the paper's measured statistics).
pub fn generate_combo(combo: &ComboProfile, seed: u64) -> Trace {
    generate(&combo.profile, seed)
}

/// Generates a combo trace by actually running both members concurrently:
/// each member is regenerated over the combo's duration with its share of
/// the combo's request count, then the two streams are merged by arrival
/// time. Useful for studying how interleaving (not just mixture statistics)
/// affects the device.
pub fn generate_merged(combo: &ComboProfile, seed: u64) -> Trace {
    let duration = combo.profile.duration_s;
    let rate_a = combo.member_a.arrival_rate();
    let rate_b = combo.member_b.arrival_rate();
    let share_a = rate_a / (rate_a + rate_b);
    let n = combo.profile.num_reqs;
    let n_a = ((n as f64 * share_a) as u64).clamp(2, n - 2);
    let n_b = n - n_a;

    let mut a = combo.member_a.clone();
    a.num_reqs = n_a;
    a.duration_s = duration;
    let mut b = combo.member_b.clone();
    b.num_reqs = n_b;
    b.duration_s = duration;

    let trace_a = generate(&a, seed);
    let trace_b = generate(&b, seed.wrapping_add(1));
    merge_traces(&trace_a, &trace_b, combo.profile.name)
}

/// Merges two traces by arrival time into a new trace named `name`,
/// re-assigning request ids to the merged order. Member address spaces are
/// kept disjoint by offsetting the second trace's addresses past the
/// first's footprint (two applications never share files).
pub fn merge_traces(a: &Trace, b: &Trace, name: impl Into<String>) -> Trace {
    let offset = a
        .records()
        .iter()
        .map(|r| r.request.end_lba())
        .max()
        .unwrap_or(0)
        .next_multiple_of(4096);
    let mut merged: Vec<TraceRecord> = Vec::with_capacity(a.len() + b.len());
    let mut ia = a.records().iter().peekable();
    let mut ib = b.records().iter().peekable();
    loop {
        let take_a = match (ia.peek(), ib.peek()) {
            (Some(ra), Some(rb)) => ra.arrival() <= rb.arrival(),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        let (rec, shift) = if take_a {
            // lint: allow(no-unwrap) -- infallible by construction; the message documents the invariant
            (*ia.next().expect("peeked"), 0)
        } else {
            // lint: allow(no-unwrap) -- infallible by construction; the message documents the invariant
            (*ib.next().expect("peeked"), offset)
        };
        let req = rec.request;
        let id = merged.len() as u64;
        merged.push(TraceRecord::new(IoRequest::new(
            id,
            req.arrival,
            req.direction,
            req.size,
            req.lba + shift,
        )));
    }
    // lint: allow(no-unwrap) -- infallible by construction; the message documents the invariant
    Trace::from_records(name, merged).expect("merge preserves arrival order")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hps_core::{Bytes, Direction, SimTime};

    fn mini_trace(name: &str, arrivals_ms: &[u64], lba0: u64) -> Trace {
        let mut t = Trace::new(name);
        for (i, &ms) in arrivals_ms.iter().enumerate() {
            t.push_request(IoRequest::new(
                i as u64,
                SimTime::from_ms(ms),
                Direction::Write,
                Bytes::kib(4),
                lba0 + i as u64 * 4096,
            ));
        }
        t
    }

    #[test]
    fn merge_interleaves_by_arrival() {
        let a = mini_trace("a", &[0, 10, 20], 0);
        let b = mini_trace("b", &[5, 15], 0);
        let m = merge_traces(&a, &b, "a/b");
        let arrivals: Vec<u64> = m.iter().map(|r| r.arrival().as_ms()).collect();
        assert_eq!(arrivals, vec![0, 5, 10, 15, 20]);
        assert_eq!(m.name(), "a/b");
        // Ids re-assigned in merged order.
        let ids: Vec<u64> = m.iter().map(|r| r.request.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn merge_keeps_address_spaces_disjoint() {
        let a = mini_trace("a", &[0, 10], 0); // ends at 2*4096
        let b = mini_trace("b", &[5], 0);
        let m = merge_traces(&a, &b, "a/b");
        let b_rec = m.iter().find(|r| r.arrival().as_ms() == 5).unwrap();
        assert!(b_rec.request.lba >= 2 * 4096, "b offset past a's footprint");
    }

    #[test]
    fn merge_with_empty_is_identity_modulo_ids() {
        let a = mini_trace("a", &[0, 1], 0);
        let empty = Trace::new("e");
        let m = merge_traces(&a, &empty, "m");
        assert_eq!(m.len(), 2);
        let m2 = merge_traces(&empty, &a, "m2");
        assert_eq!(m2.len(), 2);
    }

    #[test]
    fn seven_combo_definitions() {
        let defs = all_combo_definitions();
        assert_eq!(defs.len(), 7);
        assert_eq!(defs[0].profile.name, "Music/WB");
        assert_eq!(defs[0].member_a.name, "Music");
        assert_eq!(defs[0].member_b.name, "WebBrowsing");
        assert_eq!(defs[6].profile.name, "FB/Msg");
    }

    #[test]
    fn generated_combo_matches_own_row() {
        let defs = all_combo_definitions();
        let t = generate_combo(&defs[0], 9);
        assert_eq!(t.len() as u64, defs[0].profile.num_reqs);
        assert_eq!(t.name(), "Music/WB");
    }

    #[test]
    fn merged_combo_has_target_count_and_order() {
        let defs = all_combo_definitions();
        let t = generate_merged(&defs[6], 9); // FB/Msg, smallest
        assert_eq!(t.len() as u64, defs[6].profile.num_reqs);
        t.validate().expect("merged trace well-formed");
    }
}
