//! Turns an [`AppProfile`] into a concrete trace.

use crate::profile::AppProfile;
use hps_core::{Direction, IoRequest, SimRng, SimTime};
use hps_trace::Trace;

/// Generates the trace for one profile, deterministically from `seed`.
///
/// The generated trace matches the profile's published statistics in
/// expectation: request count exactly; duration, per-direction mean sizes,
/// write percentage, and localities within sampling noise (validated by the
/// crate's calibration tests).
///
/// # Example
///
/// ```
/// use hps_workloads::{generate, profiles};
///
/// let trace = generate(&profiles::TWITTER, 42);
/// assert_eq!(trace.len(), 13_807);
/// assert_eq!(trace.name(), "Twitter");
/// // Same seed, same trace.
/// let again = generate(&profiles::TWITTER, 42);
/// assert_eq!(trace.records()[100], again.records()[100]);
/// ```
///
/// # Panics
///
/// Panics if the profile is internally inconsistent (fewer than two
/// requests, impossible localities, or malformed size shapes).
pub fn generate(profile: &AppProfile, seed: u64) -> Trace {
    let mut rng = SimRng::seed_from(seed ^ name_tag(profile.name));
    let read_sizes = profile.read_size_model();
    let write_sizes = profile.write_size_model();
    let arrivals = profile.arrival_model();
    let mut addresses = profile.address_model();

    let mut trace = Trace::new(profile.name);
    let mut now = SimTime::ZERO;
    // Table III's *Max Size* is the largest request actually observed in
    // each trace; pin one mid-trace request to it so the reconstruction
    // reproduces the column exactly.
    let max_at = profile.num_reqs / 2;
    for id in 0..profile.num_reqs {
        if id > 0 {
            now += arrivals.sample(&mut rng);
        }
        let direction = if rng.chance(profile.write_req_pct / 100.0) {
            Direction::Write
        } else {
            Direction::Read
        };
        let size = if id == max_at {
            hps_core::Bytes::kib(profile.max_kib)
        } else {
            match direction {
                Direction::Read => read_sizes.sample(&mut rng),
                Direction::Write => write_sizes.sample(&mut rng),
            }
        };
        let lba = addresses.sample(&mut rng, size);
        trace.push_request(IoRequest::new(id, now, direction, size, lba));
    }
    trace
}

/// Stable per-name tag folded into the seed so different applications get
/// decorrelated streams even under the same master seed.
pub(crate) fn name_tag(name: &str) -> u64 {
    // FNV-1a, enough to decorrelate seeds.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use hps_trace::{SizeStats, TimingStats};

    #[test]
    fn deterministic_regeneration() {
        let a = generate(&profiles::EMAIL, 7);
        let b = generate(&profiles::EMAIL, 7);
        assert_eq!(a.records(), b.records());
        let c = generate(&profiles::EMAIL, 8);
        assert_ne!(a.records(), c.records(), "different seed, different trace");
    }

    #[test]
    fn different_apps_are_decorrelated_under_same_seed() {
        let a = generate(&profiles::CALL_IN, 7);
        let b = generate(&profiles::CALL_OUT, 7);
        assert_ne!(a.records()[0].request.lba, b.records()[0].request.lba);
    }

    #[test]
    fn request_count_is_exact() {
        for p in [&profiles::MESSAGING, &profiles::YOUTUBE] {
            assert_eq!(generate(p, 1).len() as u64, p.num_reqs, "{}", p.name);
        }
    }

    #[test]
    fn traces_validate() {
        let t = generate(&profiles::FACEBOOK, 3);
        t.validate().expect("generated trace must be well-formed");
    }

    #[test]
    fn write_percentage_matches_table() {
        let t = generate(&profiles::TWITTER, 5);
        let s = SizeStats::from_trace(&t);
        assert!(
            (s.write_req_pct - profiles::TWITTER.write_req_pct).abs() < 2.0,
            "write pct {}",
            s.write_req_pct
        );
    }

    #[test]
    fn duration_matches_table_within_noise() {
        let t = generate(&profiles::MESSAGING, 5);
        let s = TimingStats::from_trace(&t);
        let err =
            (s.duration_s - profiles::MESSAGING.duration_s).abs() / profiles::MESSAGING.duration_s;
        assert!(
            err < 0.15,
            "duration {} vs {}",
            s.duration_s,
            profiles::MESSAGING.duration_s
        );
    }

    #[test]
    fn localities_match_table_within_noise() {
        let p = &profiles::TWITTER;
        let t = generate(p, 5);
        let s = TimingStats::from_trace(&t);
        assert!(
            (s.spatial_locality_pct - p.spatial_pct).abs() < 5.0,
            "spatial {} vs {}",
            s.spatial_locality_pct,
            p.spatial_pct
        );
        assert!(
            (s.temporal_locality_pct - p.temporal_pct).abs() < 8.0,
            "temporal {} vs {}",
            s.temporal_locality_pct,
            p.temporal_pct
        );
    }

    #[test]
    fn mean_sizes_match_table_within_noise() {
        let p = &profiles::GOOGLE_MAPS;
        let t = generate(p, 5);
        let s = SizeStats::from_trace(&t);
        assert!(
            (s.avg_write_size_kib - p.avg_write_kib).abs() / p.avg_write_kib < 0.15,
            "write mean {}",
            s.avg_write_size_kib
        );
        assert!(
            (s.avg_read_size_kib - p.avg_read_kib).abs() / p.avg_read_kib < 0.25,
            "read mean {}",
            s.avg_read_size_kib
        );
    }
}
