//! Per-device workload mix sampling for fleet simulation.
//!
//! A fleet run assigns each simulated phone its own application workload,
//! drawn from a weighted mix (2DIO's observation: per-device workload
//! variation is what population studies must model, not one canonical
//! trace). [`WorkloadMix`] is that distribution: a weighted list of
//! profile names, sampled with a caller-provided [`SimRng`] so device `i`
//! of a fleet draws the same workload on every run and at every job count.
//!
//! Sampling returns the *name* (plus its index in the mix), not a
//! regenerated trace: the fleet engine keys its memoized trace cache on
//! `(name, variant)`, so the thousands of devices that draw the same
//! workload share one materialized trace instead of regenerating it.

use crate::profiles::by_name;
use crate::AppProfile;
use hps_core::SimRng;

/// A weighted distribution over application workloads.
///
/// # Example
///
/// ```
/// use hps_core::SimRng;
/// use hps_workloads::WorkloadMix;
///
/// let mix = WorkloadMix::from_weights(&[("Twitter", 3.0), ("Email", 1.0)])
///     .expect("both are paper workloads");
/// let mut rng = SimRng::seed_from(7);
/// let (index, name) = mix.sample(&mut rng);
/// assert!(name == "Twitter" || name == "Email");
/// assert!(index < 2);
/// ```
#[derive(Clone, Debug)]
pub struct WorkloadMix {
    names: Vec<&'static str>,
    weights: Vec<f64>,
}

impl WorkloadMix {
    /// Builds a mix from `(workload name, weight)` pairs. Returns `None`
    /// if any name is unknown, the list is empty, or no weight is
    /// positive (mirroring what [`SimRng::weighted_index`] would reject).
    pub fn from_weights(entries: &[(&str, f64)]) -> Option<WorkloadMix> {
        if entries.is_empty() {
            return None;
        }
        let mut names = Vec::with_capacity(entries.len());
        for &(name, weight) in entries {
            // `is_finite` also rejects NaN, so `< 0.0` is a total check here.
            if weight < 0.0 || !weight.is_finite() {
                return None;
            }
            // Resolve through the canonical table so the stored name has
            // 'static lifetime and typos fail at spec-build time.
            names.push(by_name(name)?.name);
        }
        let weights: Vec<f64> = entries.iter().map(|&(_, w)| w).collect();
        // lint: allow(float-accum) -- fixed-order spec list; validation only
        if weights.iter().sum::<f64>() <= 0.0 {
            return None;
        }
        Some(WorkloadMix { names, weights })
    }

    /// Equal-weight mix over the given workload names.
    pub fn uniform(names: &[&str]) -> Option<WorkloadMix> {
        let entries: Vec<(&str, f64)> = names.iter().map(|&n| (n, 1.0)).collect();
        WorkloadMix::from_weights(&entries)
    }

    /// A representative smartphone mix: the heavy daily-driver apps the
    /// paper's combo analysis centers on, weighted toward the social and
    /// messaging workloads that dominate real usage.
    pub fn default_fleet() -> WorkloadMix {
        WorkloadMix::from_weights(&[
            ("Facebook", 3.0),
            ("Twitter", 3.0),
            ("Messaging", 2.0),
            ("WebBrowsing", 2.0),
            ("Email", 2.0),
            ("GoogleMaps", 1.0),
            ("YouTube", 1.0),
            ("Music", 1.0),
            ("CameraVideo", 1.0),
            ("AngryBirds", 1.0),
        ])
        // lint: allow(no-unwrap) -- infallible by construction; every name is a paper workload
        .expect("default fleet mix uses only paper workload names")
    }

    /// Number of entries in the mix.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the mix has no entries (unreachable via constructors;
    /// kept for the idiomatic `len`/`is_empty` pair).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Workload names in mix order.
    pub fn names(&self) -> &[&'static str] {
        &self.names
    }

    /// Draws one workload: `(index into the mix, workload name)`.
    pub fn sample(&self, rng: &mut SimRng) -> (usize, &'static str) {
        let index = rng.weighted_index(&self.weights);
        (index, self.names[index])
    }

    /// Resolves entry `index` to its full profile.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn profile(&self, index: usize) -> AppProfile {
        // lint: allow(no-unwrap) -- infallible by construction; names were resolved in from_weights
        by_name(self.names[index]).expect("mix names resolved at construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_name_is_rejected() {
        assert!(WorkloadMix::from_weights(&[("NoSuchApp", 1.0)]).is_none());
        assert!(WorkloadMix::from_weights(&[]).is_none());
        assert!(WorkloadMix::from_weights(&[("Twitter", 0.0)]).is_none());
        assert!(WorkloadMix::from_weights(&[("Twitter", f64::NAN)]).is_none());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mix = WorkloadMix::default_fleet();
        let draws = |seed: u64| -> Vec<usize> {
            let mut rng = SimRng::seed_from(seed);
            (0..50).map(|_| mix.sample(&mut rng).0).collect()
        };
        assert_eq!(draws(11), draws(11));
        assert_ne!(draws(11), draws(12), "different seeds should diverge");
    }

    #[test]
    fn weights_shape_the_draw() {
        let mix =
            WorkloadMix::from_weights(&[("Twitter", 99.0), ("Email", 1.0)]).expect("valid mix");
        let mut rng = SimRng::seed_from(3);
        let twitter = (0..1000)
            .filter(|_| mix.sample(&mut rng).1 == "Twitter")
            .count();
        assert!(twitter > 900, "99:1 mix drew Twitter only {twitter}/1000");
    }

    #[test]
    fn profiles_resolve() {
        let mix = WorkloadMix::uniform(&["Movie", "Idle"]).expect("valid mix");
        assert_eq!(mix.len(), 2);
        assert_eq!(mix.profile(0).name, "Movie");
        assert_eq!(mix.names(), &["Movie", "Idle"]);
    }
}
