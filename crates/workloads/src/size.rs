//! Request-size models.
//!
//! A [`SizeModel`] is a discrete distribution over 4 KiB-aligned sizes.
//! Most applications use [`SizeModel::calibrated`], which builds a
//! Fig.-4-shaped distribution from three published numbers: the fraction of
//! single-page (4 KiB) requests, the mean size, and the maximum size. The
//! data-intensive outliers (Movie and friends) use hand-shaped bucket lists
//! via [`SizeModel::from_entries`].

use hps_core::{Bytes, SimRng};

/// Tail bucket sizes (KiB) used by the calibrated shape.
const TAIL: [u64; 4] = [8, 16, 32, 64];

/// A discrete distribution over request sizes (all multiples of 4 KiB).
#[derive(Clone, Debug)]
pub struct SizeModel {
    /// `(size, weight)` entries; weights need not sum to 1.
    entries: Vec<(Bytes, f64)>,
}

impl SizeModel {
    /// Builds a model from explicit `(size_kib, weight)` entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty, any weight is non-positive, or any
    /// size is zero or not a multiple of 4 KiB.
    pub fn from_entries(entries: &[(u64, f64)]) -> Self {
        assert!(!entries.is_empty(), "size model needs at least one entry");
        let entries: Vec<(Bytes, f64)> = entries
            .iter()
            .map(|&(kib, w)| {
                assert!(w > 0.0, "weights must be positive");
                assert!(
                    kib > 0 && kib % 4 == 0,
                    "sizes must be positive multiples of 4 KiB"
                );
                (Bytes::kib(kib), w)
            })
            .collect();
        SizeModel { entries }
    }

    /// Builds a Fig.-4-shaped model hitting three published targets:
    ///
    /// * `frac_4k` — the fraction of requests that are exactly 4 KiB
    ///   (Characteristic 2's 44.9%–57.4% for most applications);
    /// * `mean_kib` — the mean request size (Table III's *Ave.* columns);
    /// * `max_kib` — the largest request (Table III's *Max Size*).
    ///
    /// The shape is a 4 KiB spike plus a geometric tail over 8–64 KiB; when
    /// the target mean demands more, probability mass moves into a *bulk*
    /// size solved in closed form (clamped at `max_kib`, re-solving the
    /// bulk weight exactly). When the target mean is below the geometric
    /// tail's, the tail is interpolated toward an all-8-KiB floor.
    ///
    /// # Panics
    ///
    /// Panics if `frac_4k` is outside `(0, 1]`, `mean_kib < 4`, or
    /// `max_kib` is smaller than `mean_kib`.
    pub fn calibrated(frac_4k: f64, mean_kib: f64, max_kib: u64) -> Self {
        assert!(frac_4k > 0.0 && frac_4k <= 1.0, "frac_4k must be in (0, 1]");
        assert!(mean_kib >= 4.0, "mean below one page");
        assert!(max_kib as f64 >= mean_kib, "max below mean");

        let tail_mass = 1.0 - frac_4k;
        if tail_mass < 1e-9 {
            return SizeModel::from_entries(&[(4, 1.0)]);
        }

        // Geometric tail: weight halves per bucket; contributions s·w are
        // then equal because sizes double.
        let geo_raw = [1.0, 0.5, 0.25, 0.125];
        let norm: f64 = geo_raw.iter().sum(); // lint: allow(float-accum) -- fixed-order literal array
        let geo: Vec<f64> = geo_raw.iter().map(|w| tail_mass * w / norm).collect();
        let t0: f64 = TAIL.iter().zip(&geo).map(|(&s, &w)| s as f64 * w).sum(); // lint: allow(float-accum) -- fixed-order const table

        // Required tail contribution to the mean.
        let needed = mean_kib - 4.0 * frac_4k;
        let floor = 8.0 * tail_mass; // everything at 8 KiB

        let mut entries: Vec<(u64, f64)> = vec![(4, frac_4k)];
        if needed <= floor + 1e-9 {
            // Even the all-8-KiB floor overshoots (or matches): accept it.
            entries.push((8, tail_mass));
        } else if needed <= t0 {
            // Interpolate between the all-8-KiB floor and the geometric tail.
            let alpha = (needed - floor) / (t0 - floor);
            for (i, &s) in TAIL.iter().enumerate() {
                let base = if i == 0 { tail_mass } else { 0.0 };
                let w = alpha * geo[i] + (1.0 - alpha) * base;
                if w > 1e-12 {
                    entries.push((s, w));
                }
            }
        } else {
            // Need a bulk bucket. Try a 2% bulk weight first.
            let w_b = 0.02_f64.min(tail_mass / 2.0);
            let scale = (tail_mass - w_b) / tail_mass;
            let bulk = (needed - t0 * scale) / w_b;
            let bulk_clamped = (bulk.round() as u64).clamp(68, max_kib);
            let bulk_clamped = (bulk_clamped / 4 * 4).max(68);
            if (bulk_clamped as f64 - bulk).abs() < 8.0 {
                for (i, &s) in TAIL.iter().enumerate() {
                    entries.push((s, geo[i] * scale));
                }
                entries.push((bulk_clamped, w_b));
            } else {
                // Bulk ran past the maximum: pin it there and solve the
                // weight exactly: needed = t0·(M−w)/M + w·b.
                let b = ((max_kib / 4) * 4).max(68);
                let w = (needed - t0) / (b as f64 - t0 / tail_mass);
                if w >= tail_mass {
                    // Mean unreachable even all-bulk; saturate.
                    entries.push((b, tail_mass));
                } else {
                    let scale = (tail_mass - w) / tail_mass;
                    for (i, &s) in TAIL.iter().enumerate() {
                        entries.push((s, geo[i] * scale));
                    }
                    entries.push((b, w));
                }
            }
        }
        SizeModel::from_entries(&entries)
    }

    /// Draws one request size.
    pub fn sample(&self, rng: &mut SimRng) -> Bytes {
        let weights: Vec<f64> = self.entries.iter().map(|&(_, w)| w).collect();
        self.entries[rng.weighted_index(&weights)].0
    }

    /// The model's exact mean, in KiB.
    pub fn mean_kib(&self) -> f64 {
        let total: f64 = self.entries.iter().map(|&(_, w)| w).sum(); // lint: allow(float-accum) -- entries is a fixed-order Vec
        self.entries
            .iter()
            .map(|&(s, w)| s.as_kib_f64() * w)
            .sum::<f64>() // lint: allow(float-accum) -- entries is a fixed-order Vec
            / total
    }

    /// The probability of drawing exactly 4 KiB.
    pub fn frac_4k(&self) -> f64 {
        let total: f64 = self.entries.iter().map(|&(_, w)| w).sum(); // lint: allow(float-accum) -- entries is a fixed-order Vec
        self.entries
            .iter()
            .filter(|&&(s, _)| s == Bytes::kib(4))
            .map(|&(_, w)| w)
            .sum::<f64>() // lint: allow(float-accum) -- entries is a fixed-order Vec
            / total
    }

    /// The largest size the model can draw.
    pub fn max_size(&self) -> Bytes {
        self.entries
            .iter()
            .map(|&(s, _)| s)
            .max()
            // lint: allow(no-unwrap) -- infallible by construction; the message documents the invariant
            .expect("non-empty")
    }

    /// The `(size, weight)` entries.
    pub fn entries(&self) -> &[(Bytes, f64)] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_entries_sample_within_support() {
        let m = SizeModel::from_entries(&[(4, 0.5), (16, 0.5)]);
        let mut rng = SimRng::seed_from(1);
        for _ in 0..100 {
            let s = m.sample(&mut rng);
            assert!(s == Bytes::kib(4) || s == Bytes::kib(16));
        }
        assert!((m.mean_kib() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn calibrated_hits_mean_for_typical_app() {
        // Twitter-like: 50% 4K, mean 13.5 KiB, max 2216 KiB.
        let m = SizeModel::calibrated(0.50, 13.5, 2216);
        assert!(
            (m.mean_kib() - 13.5).abs() / 13.5 < 0.05,
            "mean {}",
            m.mean_kib()
        );
        assert!((m.frac_4k() - 0.50).abs() < 1e-9);
        assert!(m.max_size() <= Bytes::kib(2216));
    }

    #[test]
    fn calibrated_hits_mean_for_small_mean_app() {
        // Music-write-like: mean 9.5 KiB.
        let m = SizeModel::calibrated(0.55, 9.5, 940);
        assert!(
            (m.mean_kib() - 9.5).abs() / 9.5 < 0.05,
            "mean {}",
            m.mean_kib()
        );
    }

    #[test]
    fn calibrated_handles_huge_mean_with_clamped_max() {
        // CameraVideo-write-like: mean 736.5 KiB, max 10104 KiB.
        let m = SizeModel::calibrated(0.30, 736.5, 10_104);
        assert!(
            (m.mean_kib() - 736.5).abs() / 736.5 < 0.05,
            "mean {}",
            m.mean_kib()
        );
        assert!(m.max_size() <= Bytes::kib(10_104));
    }

    #[test]
    fn calibrated_handles_bulk_within_range() {
        // Booting-like: mean 53, f4 0.30, max 20816.
        let m = SizeModel::calibrated(0.30, 53.0, 20_816);
        assert!(
            (m.mean_kib() - 53.0).abs() / 53.0 < 0.08,
            "mean {}",
            m.mean_kib()
        );
    }

    #[test]
    fn calibrated_pure_4k() {
        let m = SizeModel::calibrated(1.0, 4.0, 4);
        assert_eq!(m.frac_4k(), 1.0);
        assert_eq!(m.mean_kib(), 4.0);
    }

    #[test]
    fn calibrated_floor_case_saturates_gracefully() {
        // Mean barely above 4 KiB with a big 4K spike: floor case.
        let m = SizeModel::calibrated(0.9, 4.5, 128);
        assert!(m.mean_kib() <= 8.0);
        assert!((m.frac_4k() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn sampled_mean_converges_to_model_mean() {
        let m = SizeModel::calibrated(0.5, 20.0, 1536);
        let mut rng = SimRng::seed_from(7);
        let n = 50_000;
        let total: f64 = (0..n).map(|_| m.sample(&mut rng).as_kib_f64()).sum();
        let sampled = total / n as f64;
        assert!(
            (sampled - m.mean_kib()).abs() / m.mean_kib() < 0.05,
            "sampled {sampled}"
        );
    }

    #[test]
    fn all_sizes_are_page_aligned() {
        for (f4, mean, max) in [
            (0.45, 53.0, 20_816u64),
            (0.3, 736.5, 10_104),
            (0.57, 11.0, 128),
        ] {
            let m = SizeModel::calibrated(f4, mean, max);
            for &(s, _) in m.entries() {
                assert!(s.is_multiple_of(Bytes::kib(4)), "{s}");
            }
        }
    }

    #[test]
    fn every_paper_mean_is_reachable() {
        // Every (f4, mean, max) triple used by the 18 profiles must
        // calibrate to within 8%.
        let cases: [(f64, f64, u64); 12] = [
            (0.50, 39.5, 1536),
            (0.50, 15.0, 1536),
            (0.55, 12.0, 1536),
            (0.30, 61.0, 20_816),
            (0.30, 37.5, 20_816),
            (0.55, 62.5, 940),
            (0.55, 9.5, 940),
            (0.60, 38.5, 10_104),
            (0.57, 10.5, 128),
            (0.45, 22.0, 22_144),
            (0.45, 93.0, 22_144),
            (0.46, 36.0, 11_164),
        ];
        for (f4, mean, max) in cases {
            let m = SizeModel::calibrated(f4, mean, max);
            let err = (m.mean_kib() - mean).abs() / mean;
            assert!(
                err < 0.08,
                "f4={f4} mean={mean} max={max}: got {}",
                m.mean_kib()
            );
        }
    }

    #[test]
    #[should_panic(expected = "multiples of 4")]
    fn rejects_unaligned_entry() {
        let _ = SizeModel::from_entries(&[(6, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "max below mean")]
    fn rejects_inconsistent_targets() {
        let _ = SizeModel::calibrated(0.5, 100.0, 64);
    }
}
