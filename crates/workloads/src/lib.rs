//! Reconstructed smartphone workloads.
//!
//! The paper's 25 Nexus 5 traces were never released, but its Tables III
//! and IV publish every marginal statistic that the evaluation consumes:
//! request counts, total bytes, read/write mixes, per-direction mean sizes,
//! maximum sizes, recording durations, localities, and the distribution
//! *shapes* of Figs. 4 and 6. This crate rebuilds each trace as a seeded
//! synthetic workload calibrated against those published numbers:
//!
//! * [`size`] — a discrete request-size model auto-calibrated to hit a
//!   target mean, 4 KiB fraction, and maximum (Fig. 4 / Table III);
//! * [`arrival`] — a bursty two-component lognormal inter-arrival model
//!   matched to the recording duration and request count (Fig. 6 /
//!   Table IV);
//! * [`address`] — an address model with tunable spatial (sequential-pair)
//!   and temporal (re-access) localities (Table IV);
//! * [`profile`] — the per-application parameter record;
//! * [`profiles`] — the 18 application profiles with the paper's numbers
//!   embedded, plus the 7 combo definitions;
//! * [`generator`] — turns a profile into a [`hps_trace::Trace`];
//! * [`stream`] — the same request sequence as a streaming
//!   [`hps_trace::TraceSource`], with trace length scaled by a runtime
//!   knob instead of bounded by memory;
//! * [`combo`] — merges two applications into a combo trace (Fig. 7);
//! * [`mix`] — weighted per-device workload sampling for fleet runs.
//!
//! Everything is deterministic: the same seed regenerates the same trace
//! byte-for-byte.

pub mod address;
pub mod arrival;
pub mod combo;
pub mod generator;
pub mod mix;
pub mod profile;
pub mod profiles;
pub mod size;
pub mod stream;

pub use combo::{generate_combo, ComboProfile};
pub use generator::generate;
pub use mix::WorkloadMix;
pub use profile::AppProfile;
pub use profiles::{all_combos, all_individual, by_name, COMBO_NAMES, INDIVIDUAL_NAMES};
pub use stream::{stream, TraceStream};
