//! The paper's 25 workloads, reconstructed.
//!
//! Every constant below embeds one row of Tables III and IV verbatim
//! (request count, duration, write percentage, per-direction mean sizes,
//! max size, localities) plus two shape parameters the tables do not pin
//! down, chosen from the text: the Fig. 4 single-page fraction
//! (44.9%–57.4% for 15 of the 18 applications; Movie ~8%, Booting ~30%,
//! CameraVideo above the band) and the arrival burstiness (Fig. 6: local
//! applications are burstier than online ones; Movie's gaps are mostly
//! sub-millisecond).
//!
//! The 7 combo workloads carry their own Table III/IV rows (the paper
//! measured them directly; a combo is *not* the statistical mixture of its
//! members — shared memory buffers raise the combined rates). They are
//! generated from their own rows by default; [`crate::combo`] additionally
//! supports true member-merging for experiments.

use crate::profile::{AppProfile, SizeShape};

/// Names of the 18 individual traces, in the tables' order.
pub const INDIVIDUAL_NAMES: [&str; 18] = [
    "Idle",
    "CallIn",
    "CallOut",
    "Booting",
    "Movie",
    "Music",
    "AngryBirds",
    "CameraVideo",
    "GoogleMaps",
    "Messaging",
    "Twitter",
    "Email",
    "Facebook",
    "Amazon",
    "YouTube",
    "Radio",
    "Installing",
    "WebBrowsing",
];

/// Names of the 7 combo traces, in the tables' order.
pub const COMBO_NAMES: [&str; 7] = [
    "Music/WB",
    "Radio/WB",
    "Music/FB",
    "Radio/FB",
    "Music/Msg",
    "Radio/Msg",
    "FB/Msg",
];

/// Movie's hand-shaped read sizes: Fig. 4 shows >65% of requests between
/// 16 and 64 KiB; Table III gives a 27.5 KiB read mean and 512 KiB max.
const MOVIE_READ: &[(u64, f64)] = &[
    (4, 0.08),
    (8, 0.10),
    (16, 0.14),
    (24, 0.32),
    (32, 0.24),
    (48, 0.07),
    (64, 0.025),
    (128, 0.02),
    (512, 0.005),
];

/// Movie's write sizes (5.4% of requests, 17 KiB mean).
const MOVIE_WRITE: &[(u64, f64)] = &[
    (4, 0.45),
    (8, 0.20),
    (16, 0.15),
    (32, 0.125),
    (64, 0.05),
    (128, 0.025),
];

macro_rules! profile {
    ($name:literal, n=$n:expr, dur=$dur:expr, wpct=$wpct:expr, r=$r:expr, w=$w:expr,
     max=$max:expr, f4=$f4:expr, spat=$spat:expr, temp=$temp:expr,
     burst=$burst:expr, bmean=$bmean:expr, sigma=$sigma:expr, shape=$shape:expr) => {
        AppProfile {
            name: $name,
            num_reqs: $n,
            duration_s: $dur,
            write_req_pct: $wpct,
            avg_read_kib: $r,
            avg_write_kib: $w,
            max_kib: $max,
            frac_4k: $f4,
            spatial_pct: $spat,
            temporal_pct: $temp,
            burst_frac: $burst,
            burst_mean_ms: $bmean,
            sigma: $sigma,
            shape: $shape,
        }
    };
}

/// Idle: the phone overnight (10 pm–6 am); background services only.
pub const IDLE: AppProfile = profile!(
    "Idle",
    n = 6_932,
    dur = 29_363.0,
    wpct = 88.94,
    r = 39.5,
    w = 15.0,
    max = 1_536,
    f4 = 0.50,
    spat = 25.32,
    temp = 34.22,
    burst = 0.55,
    bmean = 8.0,
    sigma = 1.3,
    shape = SizeShape::Calibrated
);

/// CallIn: answering an incoming call; almost pure logging writes.
pub const CALL_IN: AppProfile = profile!(
    "CallIn",
    n = 1_491,
    dur = 3_767.0,
    wpct = 99.93,
    r = 12.0,
    w = 18.0,
    max = 1_536,
    f4 = 0.52,
    spat = 29.59,
    temp = 31.00,
    burst = 0.40,
    bmean = 8.0,
    sigma = 1.2,
    shape = SizeShape::Calibrated
);

/// CallOut: making a phone call.
pub const CALL_OUT: AppProfile = profile!(
    "CallOut",
    n = 1_569,
    dur = 3_700.0,
    wpct = 98.92,
    r = 10.0,
    w = 17.5,
    max = 1_536,
    f4 = 0.52,
    spat = 27.29,
    temp = 35.14,
    burst = 0.40,
    bmean = 8.0,
    sigma = 1.2,
    shape = SizeShape::Calibrated
);

/// Booting: 40 s of read-dominated program/config loading at 460 req/s.
pub const BOOTING: AppProfile = profile!(
    "Booting",
    n = 18_417,
    dur = 40.0,
    wpct = 33.07,
    r = 61.0,
    w = 37.5,
    max = 20_816,
    f4 = 0.30,
    spat = 28.19,
    temp = 19.70,
    burst = 0.90,
    bmean = 1.2,
    sigma = 1.0,
    shape = SizeShape::Calibrated
);

/// Movie: locally stored video; >65% of requests 16–64 KiB, sub-ms bursts.
pub const MOVIE: AppProfile = profile!(
    "Movie",
    n = 4_781,
    dur = 998.0,
    wpct = 5.40,
    r = 27.5,
    w = 17.0,
    max = 512,
    f4 = 0.08,
    spat = 17.25,
    temp = 1.72,
    burst = 0.85,
    bmean = 0.6,
    sigma = 1.5,
    shape = SizeShape::Custom {
        read: MOVIE_READ,
        write: MOVIE_WRITE
    }
);

/// Music: local playback; large media reads, small log writes.
pub const MUSIC: AppProfile = profile!(
    "Music",
    n = 6_913,
    dur = 3_801.0,
    wpct = 52.80,
    r = 62.5,
    w = 9.5,
    max = 940,
    f4 = 0.55,
    spat = 21.51,
    temp = 31.86,
    burst = 0.60,
    bmean = 8.0,
    sigma = 1.3,
    shape = SizeShape::Calibrated
);

/// AngryBirds: continuous log/status writes while playing.
pub const ANGRY_BIRDS: AppProfile = profile!(
    "AngryBirds",
    n = 3_215,
    dur = 2_023.0,
    wpct = 84.51,
    r = 51.0,
    w = 25.0,
    max = 3_940,
    f4 = 0.50,
    spat = 30.08,
    temp = 26.07,
    burst = 0.55,
    bmean = 6.0,
    sigma = 1.2,
    shape = SizeShape::Calibrated
);

/// CameraVideo: video recording; huge sequential packed writes.
pub const CAMERA_VIDEO: AppProfile = profile!(
    "CameraVideo",
    n = 9_348,
    dur = 3_417.0,
    wpct = 29.46,
    r = 38.5,
    w = 736.5,
    max = 10_104,
    f4 = 0.60,
    spat = 20.34,
    temp = 16.30,
    burst = 0.70,
    bmean = 4.0,
    sigma = 1.2,
    shape = SizeShape::Calibrated
);

/// GoogleMaps: navigation; map-tile cache writes.
pub const GOOGLE_MAPS: AppProfile = profile!(
    "GoogleMaps",
    n = 12_603,
    dur = 1_720.0,
    wpct = 86.78,
    r = 28.5,
    w = 13.5,
    max = 8_174,
    f4 = 0.52,
    spat = 21.10,
    temp = 42.78,
    burst = 0.65,
    bmean = 6.0,
    sigma = 1.2,
    shape = SizeShape::Calibrated
);

/// Messaging: SQLite-heavy small writes.
pub const MESSAGING: AppProfile = profile!(
    "Messaging",
    n = 5_702,
    dur = 589.0,
    wpct = 97.30,
    r = 23.0,
    w = 10.5,
    max = 128,
    f4 = 0.57,
    spat = 28.85,
    temp = 50.82,
    burst = 0.65,
    bmean = 6.0,
    sigma = 1.1,
    shape = SizeShape::Calibrated
);

/// Twitter: timeline caching; the densest online workload.
pub const TWITTER: AppProfile = profile!(
    "Twitter",
    n = 13_807,
    dur = 856.0,
    wpct = 88.48,
    r = 35.5,
    w = 10.5,
    max = 2_216,
    f4 = 0.55,
    spat = 26.57,
    temp = 52.90,
    burst = 0.70,
    bmean = 6.0,
    sigma = 1.1,
    shape = SizeShape::Calibrated
);

/// Email: fetch-and-cache with moderate writes.
pub const EMAIL: AppProfile = profile!(
    "Email",
    n = 2_906,
    dur = 740.0,
    wpct = 70.37,
    r = 14.5,
    w = 22.5,
    max = 388,
    f4 = 0.50,
    spat = 14.49,
    temp = 34.87,
    burst = 0.60,
    bmean = 6.0,
    sigma = 1.2,
    shape = SizeShape::Calibrated
);

/// Facebook: picture viewing and comment caching.
pub const FACEBOOK: AppProfile = profile!(
    "Facebook",
    n = 3_897,
    dur = 1_112.0,
    wpct = 74.42,
    r = 28.5,
    w = 23.5,
    max = 2_680,
    f4 = 0.50,
    spat = 19.89,
    temp = 34.21,
    burst = 0.60,
    bmean = 6.0,
    sigma = 1.2,
    shape = SizeShape::Calibrated
);

/// Amazon: shopping; a distinctive response-time pattern per the paper.
pub const AMAZON: AppProfile = profile!(
    "Amazon",
    n = 3_272,
    dur = 819.0,
    wpct = 63.02,
    r = 24.5,
    w = 18.0,
    max = 1_392,
    f4 = 0.52,
    spat = 17.79,
    temp = 26.38,
    burst = 0.75,
    bmean = 6.0,
    sigma = 1.3,
    shape = SizeShape::Calibrated
);

/// YouTube: streaming buffers in RAM; sparse device I/O.
pub const YOUTUBE: AppProfile = profile!(
    "YouTube",
    n = 2_080,
    dur = 4_690.0,
    wpct = 97.50,
    r = 19.5,
    w = 13.5,
    max = 1_536,
    f4 = 0.55,
    spat = 47.61,
    temp = 16.35,
    burst = 0.45,
    bmean = 8.0,
    sigma = 1.3,
    shape = SizeShape::Calibrated
);

/// Radio: online radio; periodic cache flushes.
pub const RADIO: AppProfile = profile!(
    "Radio",
    n = 5_820,
    dur = 4_454.0,
    wpct = 98.68,
    r = 36.0,
    w = 19.5,
    max = 11_164,
    f4 = 0.46,
    spat = 23.90,
    temp = 29.18,
    burst = 0.50,
    bmean = 8.0,
    sigma = 1.3,
    shape = SizeShape::Calibrated
);

/// Installing: Google Play downloads; write-dominated bulk.
pub const INSTALLING: AppProfile = profile!(
    "Installing",
    n = 17_952,
    dur = 977.0,
    wpct = 98.26,
    r = 22.0,
    w = 93.0,
    max = 22_144,
    f4 = 0.45,
    spat = 22.59,
    temp = 49.57,
    burst = 0.80,
    bmean = 3.0,
    sigma = 1.1,
    shape = SizeShape::Calibrated
);

/// WebBrowsing: reading news on the TIME website.
pub const WEB_BROWSING: AppProfile = profile!(
    "WebBrowsing",
    n = 4_090,
    dur = 4_901.0,
    wpct = 80.71,
    r = 21.5,
    w = 23.5,
    max = 1_536,
    f4 = 0.50,
    spat = 23.77,
    temp = 30.83,
    burst = 0.50,
    bmean = 8.0,
    sigma = 1.3,
    shape = SizeShape::Calibrated
);

// --- Combo traces (their own Table III/IV rows) ---

/// Music + WebBrowsing running concurrently.
pub const MUSIC_WB: AppProfile = profile!(
    "Music/WB",
    n = 13_206,
    dur = 2_165.0,
    wpct = 81.68,
    r = 50.5,
    w = 15.0,
    max = 1_544,
    f4 = 0.56,
    spat = 18.40,
    temp = 38.40,
    burst = 0.65,
    bmean = 6.0,
    sigma = 1.2,
    shape = SizeShape::Calibrated
);

/// Radio + WebBrowsing.
pub const RADIO_WB: AppProfile = profile!(
    "Radio/WB",
    n = 12_000,
    dur = 1_227.0,
    wpct = 72.02,
    r = 29.0,
    w = 19.5,
    max = 2_716,
    f4 = 0.47,
    spat = 18.66,
    temp = 28.48,
    burst = 0.60,
    bmean = 6.0,
    sigma = 1.2,
    shape = SizeShape::Calibrated
);

/// Music + Facebook.
pub const MUSIC_FB: AppProfile = profile!(
    "Music/FB",
    n = 35_131,
    dur = 2_026.0,
    wpct = 87.67,
    r = 38.0,
    w = 8.5,
    max = 2_424,
    f4 = 0.57,
    spat = 14.19,
    temp = 60.50,
    burst = 0.75,
    bmean = 6.0,
    sigma = 1.1,
    shape = SizeShape::Calibrated
);

/// Radio + Facebook.
pub const RADIO_FB: AppProfile = profile!(
    "Radio/FB",
    n = 10_494,
    dur = 900.0,
    wpct = 91.68,
    r = 23.0,
    w = 13.5,
    max = 1_368,
    f4 = 0.47,
    spat = 19.12,
    temp = 52.70,
    burst = 0.65,
    bmean = 6.0,
    sigma = 1.2,
    shape = SizeShape::Calibrated
);

/// Music + Messaging.
pub const MUSIC_MSG: AppProfile = profile!(
    "Music/Msg",
    n = 16_501,
    dur = 926.0,
    wpct = 94.43,
    r = 56.0,
    w = 11.5,
    max = 472,
    f4 = 0.56,
    spat = 20.68,
    temp = 53.84,
    burst = 0.70,
    bmean = 6.0,
    sigma = 1.1,
    shape = SizeShape::Calibrated
);

/// Radio + Messaging.
pub const RADIO_MSG: AppProfile = profile!(
    "Radio/Msg",
    n = 11_101,
    dur = 660.0,
    wpct = 98.15,
    r = 17.5,
    w = 13.0,
    max = 1_536,
    f4 = 0.47,
    spat = 27.25,
    temp = 49.48,
    burst = 0.65,
    bmean = 6.0,
    sigma = 1.2,
    shape = SizeShape::Calibrated
);

/// Facebook with message-driven task switching.
pub const FB_MSG: AppProfile = profile!(
    "FB/Msg",
    n = 15_602,
    dur = 699.0,
    wpct = 84.72,
    r = 21.5,
    w = 9.5,
    max = 732,
    f4 = 0.52,
    spat = 15.80,
    temp = 54.04,
    burst = 0.70,
    bmean = 6.0,
    sigma = 1.1,
    shape = SizeShape::Calibrated
);

/// The 18 individual application profiles, in table order.
pub fn all_individual() -> Vec<AppProfile> {
    vec![
        IDLE,
        CALL_IN,
        CALL_OUT,
        BOOTING,
        MOVIE,
        MUSIC,
        ANGRY_BIRDS,
        CAMERA_VIDEO,
        GOOGLE_MAPS,
        MESSAGING,
        TWITTER,
        EMAIL,
        FACEBOOK,
        AMAZON,
        YOUTUBE,
        RADIO,
        INSTALLING,
        WEB_BROWSING,
    ]
}

/// The 7 combo profiles, in table order.
pub fn all_combos() -> Vec<AppProfile> {
    vec![
        MUSIC_WB, RADIO_WB, MUSIC_FB, RADIO_FB, MUSIC_MSG, RADIO_MSG, FB_MSG,
    ]
}

/// Looks a profile up by its paper name (individual or combo).
pub fn by_name(name: &str) -> Option<AppProfile> {
    all_individual()
        .into_iter()
        .chain(all_combos())
        .find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_25_workloads() {
        assert_eq!(all_individual().len(), 18);
        assert_eq!(all_combos().len(), 7);
    }

    #[test]
    fn names_match_constants() {
        for (profile, name) in all_individual().iter().zip(INDIVIDUAL_NAMES) {
            assert_eq!(profile.name, name);
        }
        for (profile, name) in all_combos().iter().zip(COMBO_NAMES) {
            assert_eq!(profile.name, name);
        }
    }

    #[test]
    fn by_name_finds_everything() {
        for name in INDIVIDUAL_NAMES.iter().chain(COMBO_NAMES.iter()) {
            assert!(by_name(name).is_some(), "{name}");
        }
        assert!(by_name("Nonexistent").is_none());
    }

    #[test]
    fn characteristic_1_write_dominance() {
        // 15 of 18 individual traces are write-dominant (>50% writes),
        // 6 of them above 90%.
        let profiles = all_individual();
        let dominant = profiles.iter().filter(|p| p.write_req_pct > 50.0).count();
        let extreme = profiles.iter().filter(|p| p.write_req_pct > 90.0).count();
        assert_eq!(dominant, 15);
        assert!(extreme >= 6, "{extreme} extreme writers");
    }

    #[test]
    fn characteristic_2_small_request_band() {
        // 15 of 18 have a 4 KiB fraction in the 44.9%–57.4% band.
        let in_band = all_individual()
            .iter()
            .filter(|p| (0.449..=0.574).contains(&p.frac_4k))
            .count();
        assert_eq!(in_band, 15);
    }

    #[test]
    fn characteristic_6_long_interarrivals() {
        // 13 of 18 average at least 200 ms between requests.
        let long = all_individual()
            .iter()
            .filter(|p| p.duration_s * 1e3 / (p.num_reqs as f64 - 1.0) >= 200.0)
            .count();
        assert_eq!(long, 13);
    }

    #[test]
    fn localities_are_weak() {
        // Characteristic 5: spatial < 48% everywhere; 16 of 18 below 30%.
        let profiles = all_individual();
        assert!(profiles.iter().all(|p| p.spatial_pct < 48.0));
        let low_spatial = profiles.iter().filter(|p| p.spatial_pct < 30.0).count();
        assert_eq!(low_spatial, 16);
    }

    #[test]
    fn all_size_models_build() {
        for p in all_individual().into_iter().chain(all_combos()) {
            let r = p.read_size_model();
            let w = p.write_size_model();
            // Calibrated models stay near their table means.
            if matches!(p.shape, SizeShape::Calibrated) {
                let r_err = (r.mean_kib() - p.avg_read_kib).abs() / p.avg_read_kib;
                let w_err = (w.mean_kib() - p.avg_write_kib).abs() / p.avg_write_kib;
                assert!(
                    r_err < 0.10,
                    "{} read mean {} vs {}",
                    p.name,
                    r.mean_kib(),
                    p.avg_read_kib
                );
                assert!(
                    w_err < 0.10,
                    "{} write mean {} vs {}",
                    p.name,
                    w.mean_kib(),
                    p.avg_write_kib
                );
            }
            let _ = p.arrival_model();
            let _ = p.address_model();
        }
    }

    #[test]
    fn movie_shape_matches_fig4() {
        let r = MOVIE.read_size_model();
        // >65% of requests in (16, 64] KiB.
        let hump: f64 = r
            .entries()
            .iter()
            .filter(|(s, _)| s.as_kib() > 16 && s.as_kib() <= 64)
            .map(|&(_, w)| w)
            .sum();
        assert!(hump > 0.63, "hump {hump}");
        assert!(
            (r.mean_kib() - 27.5).abs() / 27.5 < 0.10,
            "mean {}",
            r.mean_kib()
        );
    }
}
