//! Streaming trace generation: the materialized generator's RNG draws,
//! produced one request at a time at any scale.
//!
//! [`TraceStream`] yields the exact request sequence
//! [`crate::generate`] would materialize — same seed derivation, same
//! per-request draw order (inter-arrival gap, direction, size, address) —
//! without ever holding more than one request in memory. At `scale = 1`
//! the stream is therefore byte-identical to the materialized trace; at
//! `scale = N` it appends `N − 1` further *epochs*, each a fresh
//! generation pass over the same profile with a decorrelated seed, shifted
//! past the previous epoch's end. Trace length becomes a runtime knob
//! instead of a memory ceiling.

use crate::address::AddressModel;
use crate::arrival::ArrivalModel;
use crate::generator::name_tag;
use crate::profile::AppProfile;
use crate::size::SizeModel;
use hps_core::{Bytes, Direction, IoRequest, SimDuration, SimRng, SimTime};
use hps_trace::TraceSource;

/// Streams `scale` back-to-back generation epochs of one profile.
///
/// Epoch 0 reproduces [`crate::generate`]`(profile, seed)` draw-for-draw
/// (including the mid-trace request pinned to Table III's *Max Size*).
/// Every later epoch re-derives its RNG from the seed folded with the
/// epoch index, re-calibrates the models, and offsets its arrivals so the
/// stream's timestamps stay non-decreasing; request ids keep counting up
/// across epochs.
#[derive(Clone, Debug)]
pub struct TraceStream {
    profile: AppProfile,
    seed: u64,
    scale: u64,
    /// Current epoch (0-based); `scale` when exhausted.
    epoch: u64,
    /// Next request index within the current epoch.
    idx: u64,
    rng: SimRng,
    read_sizes: SizeModel,
    write_sizes: SizeModel,
    arrivals: ArrivalModel,
    addresses: AddressModel,
    /// Arrival timestamp of the previously yielded request (absolute).
    now: SimTime,
    /// Index within an epoch of the request pinned to the profile's max
    /// size.
    max_at: u64,
    next_id: u64,
}

/// Builds a stream of `scale` epochs of `profile` under `seed`.
///
/// # Panics
///
/// Panics if `scale` is zero or the profile is internally inconsistent
/// (same conditions as [`crate::generate`]).
pub fn stream(profile: &AppProfile, seed: u64, scale: u64) -> TraceStream {
    assert!(scale > 0, "scale must be at least 1");
    let profile = profile.clone();
    let mut s = TraceStream {
        rng: SimRng::seed_from(epoch_seed(seed, profile.name, 0)),
        read_sizes: profile.read_size_model(),
        write_sizes: profile.write_size_model(),
        arrivals: profile.arrival_model(),
        addresses: profile.address_model(),
        seed,
        scale,
        epoch: 0,
        idx: 0,
        now: SimTime::ZERO,
        max_at: profile.num_reqs / 2,
        next_id: 0,
        profile,
    };
    s.max_at = s.profile.num_reqs / 2;
    s
}

/// The RNG seed for one epoch: epoch 0 is exactly the materialized
/// generator's `seed ^ name_tag(name)`; later epochs fold in the epoch
/// index via a golden-ratio stride so their streams decorrelate.
fn epoch_seed(seed: u64, name: &str, epoch: u64) -> u64 {
    (seed ^ name_tag(name)).wrapping_add(epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

impl TraceStream {
    /// The profile's mean inter-arrival gap, used to splice epochs
    /// together with a plausible (deterministic) seam.
    fn mean_gap(&self) -> SimDuration {
        let gaps = self.profile.num_reqs.saturating_sub(1).max(1);
        SimDuration::from_ns((self.profile.duration_s * 1e9 / gaps as f64) as u64)
    }

    /// Re-seeds the RNG and models for the next epoch and shifts its time
    /// base past the previous epoch's last arrival.
    fn advance_epoch(&mut self) {
        self.epoch += 1;
        self.idx = 0;
        if self.epoch >= self.scale {
            return;
        }
        self.rng = SimRng::seed_from(epoch_seed(self.seed, self.profile.name, self.epoch));
        self.read_sizes = self.profile.read_size_model();
        self.write_sizes = self.profile.write_size_model();
        self.arrivals = self.profile.arrival_model();
        self.addresses = self.profile.address_model();
        self.now += self.mean_gap();
    }
}

impl TraceSource for TraceStream {
    fn name(&self) -> &str {
        self.profile.name
    }

    fn next_request(&mut self) -> Option<IoRequest> {
        if self.epoch >= self.scale {
            return None;
        }
        // Identical draw order to `generate`: gap (except the epoch's
        // first request), direction, size (mid-epoch request pinned to the
        // table's max), then address.
        if self.idx > 0 {
            self.now += self.arrivals.sample(&mut self.rng);
        }
        let direction = if self.rng.chance(self.profile.write_req_pct / 100.0) {
            Direction::Write
        } else {
            Direction::Read
        };
        let size = if self.idx == self.max_at {
            Bytes::kib(self.profile.max_kib)
        } else {
            match direction {
                Direction::Read => self.read_sizes.sample(&mut self.rng),
                Direction::Write => self.write_sizes.sample(&mut self.rng),
            }
        };
        let lba = self.addresses.sample(&mut self.rng, size);
        let request = IoRequest::new(self.next_id, self.now, direction, size, lba);
        self.next_id += 1;
        self.idx += 1;
        if self.idx == self.profile.num_reqs {
            self.advance_epoch();
        }
        Some(request)
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.profile.num_reqs * self.scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use crate::profiles;

    #[test]
    fn scale_one_matches_materialized_trace_exactly() {
        let trace = generate(&profiles::EMAIL, 42);
        let mut s = stream(&profiles::EMAIL, 42, 1);
        let mut count = 0u64;
        for record in trace.records() {
            let req = s.next_request().expect("stream too short");
            assert_eq!(req, record.request, "request {count} diverged");
            count += 1;
        }
        assert!(s.next_request().is_none(), "stream too long");
        assert_eq!(count, profiles::EMAIL.num_reqs);
    }

    #[test]
    fn scaled_stream_multiplies_length_and_stays_monotonic() {
        let mut s = stream(&profiles::CALL_IN, 7, 3);
        assert_eq!(s.len_hint(), Some(profiles::CALL_IN.num_reqs * 3));
        let mut last_arrival = SimTime::ZERO;
        let mut last_id = None;
        let mut count = 0u64;
        while let Some(req) = s.next_request() {
            assert!(req.arrival >= last_arrival, "arrivals must not regress");
            if let Some(prev) = last_id {
                assert_eq!(req.id, prev + 1, "ids count up across epochs");
            }
            last_arrival = req.arrival;
            last_id = Some(req.id);
            count += 1;
        }
        assert_eq!(count, profiles::CALL_IN.num_reqs * 3);
    }

    #[test]
    fn epochs_are_decorrelated() {
        let n = profiles::CALL_IN.num_reqs;
        let mut s = stream(&profiles::CALL_IN, 7, 2);
        let mut epoch0 = Vec::new();
        let mut epoch1 = Vec::new();
        while let Some(req) = s.next_request() {
            if req.id < n {
                epoch0.push(req.lba);
            } else {
                epoch1.push(req.lba);
            }
        }
        assert_eq!(epoch0.len(), epoch1.len());
        assert_ne!(epoch0, epoch1, "epochs must not repeat the same draws");
    }

    #[test]
    #[should_panic(expected = "scale must be at least 1")]
    fn zero_scale_rejected() {
        let _ = stream(&profiles::EMAIL, 1, 0);
    }
}
