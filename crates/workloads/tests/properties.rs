//! Property-based tests for the workload generators: arbitrary (sane)
//! profile parameters always yield well-formed, calibrated traces.

use hps_core::Bytes;
use hps_trace::{SizeStats, TimingStats};
use hps_workloads::generate;
use hps_workloads::profile::{AppProfile, SizeShape};
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = AppProfile> {
    (
        200u64..800,                  // num_reqs (small for test speed)
        10.0f64..500.0,               // duration_s
        5.0f64..95.0,                 // write_req_pct
        4.0f64..80.0,                 // avg_read_kib
        4.0f64..80.0,                 // avg_write_kib
        (5.0f64..40.0, 5.0f64..45.0), // spatial, temporal (sum < 100)
        0.0f64..0.9,                  // burst_frac
        0.45f64..0.58,                // frac_4k
    )
        .prop_map(|(n, dur, wpct, r, w, (spat, temp), burst, f4)| AppProfile {
            name: "prop",
            num_reqs: n,
            duration_s: dur,
            write_req_pct: wpct,
            avg_read_kib: r,
            avg_write_kib: w,
            max_kib: 2_048,
            frac_4k: f4,
            spatial_pct: spat,
            temporal_pct: temp,
            burst_frac: burst,
            burst_mean_ms: 4.0,
            sigma: 1.0,
            shape: SizeShape::Calibrated,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_traces_are_well_formed(profile in arb_profile(), seed in 0u64..1_000) {
        let trace = generate(&profile, seed);
        prop_assert_eq!(trace.len() as u64, profile.num_reqs);
        trace.validate().unwrap();
        // All sizes positive, 4 KiB aligned, within the profile max.
        for r in &trace {
            prop_assert!(r.request.size.is_multiple_of(Bytes::kib(4)));
            prop_assert!(r.request.size <= Bytes::kib(profile.max_kib));
        }
    }

    #[test]
    fn write_mix_tracks_profile(profile in arb_profile(), seed in 0u64..1_000) {
        let trace = generate(&profile, seed);
        let stats = SizeStats::from_trace(&trace);
        // Binomial noise at n>=200: allow a generous band.
        prop_assert!(
            (stats.write_req_pct - profile.write_req_pct).abs() < 12.0,
            "write pct {} vs {}",
            stats.write_req_pct,
            profile.write_req_pct
        );
    }

    #[test]
    fn localities_track_profile(profile in arb_profile(), seed in 0u64..1_000) {
        let trace = generate(&profile, seed);
        let stats = TimingStats::from_trace(&trace);
        prop_assert!(
            (stats.spatial_locality_pct - profile.spatial_pct).abs() < 10.0,
            "spatial {} vs {}",
            stats.spatial_locality_pct,
            profile.spatial_pct
        );
        prop_assert!(
            (stats.temporal_locality_pct - profile.temporal_pct).abs() < 12.0,
            "temporal {} vs {}",
            stats.temporal_locality_pct,
            profile.temporal_pct
        );
    }

    #[test]
    fn duration_tracks_profile(profile in arb_profile(), seed in 0u64..1_000) {
        let trace = generate(&profile, seed);
        let stats = TimingStats::from_trace(&trace);
        // The total duration is a sum of a few hundred lognormal gaps; with
        // a high burst fraction almost all of the duration sits in a small
        // number of heavy-tailed think gaps, so the sum's relative noise
        // can approach 1 at these test sizes. Assert the right order of
        // magnitude here; the paper-profile calibration tests (full-size
        // traces) assert the tight bound.
        let err = (stats.duration_s - profile.duration_s).abs() / profile.duration_s;
        prop_assert!(err < 1.5, "duration {} vs {}", stats.duration_s, profile.duration_s);
    }

    #[test]
    fn generation_is_a_pure_function_of_seed(profile in arb_profile(), seed in 0u64..1_000) {
        let a = generate(&profile, seed);
        let b = generate(&profile, seed);
        prop_assert_eq!(a.records(), b.records());
    }
}
