//! Comparing two rendered metrics summaries.
//!
//! [`render_summary`](crate::render_summary) is the stable text form of a
//! [`MetricsRegistry`](crate::MetricsRegistry); `repro --metrics-out`
//! writes it to disk after a replay. This module parses two such files
//! back into metric values and reports every divergence beyond a relative
//! tolerance, which is what lets CI re-run an experiment and fail the
//! build when the numbers drift.
//!
//! The comparison is structural, not textual: column alignment, metric
//! ordering, and trailing whitespace never count as differences. A
//! tolerance of `0.0` demands exact equality of every parsed value.

use crate::registry::MetricsRegistry;
use hps_core::{Error, Result};
use std::collections::BTreeMap;

/// One metric value parsed back out of a summary file.
#[derive(Clone, Debug, PartialEq)]
pub enum SummaryValue {
    /// A counter line: `name  12`.
    Counter(u64),
    /// A populated histogram line: `name  n=.. mean=.. p50=.. p99=.. max=..`.
    Histogram {
        /// Number of recorded samples.
        n: u64,
        /// Arithmetic mean of the samples.
        mean: f64,
        /// Median.
        p50: f64,
        /// 99th percentile.
        p99: f64,
        /// Largest sample.
        max: f64,
    },
    /// A histogram that recorded nothing: `name  (empty)`.
    EmptyHistogram,
}

/// One reported divergence between two summaries.
#[derive(Clone, Debug, PartialEq)]
pub struct SummaryDiff {
    /// Metric name the divergence is on.
    pub name: String,
    /// Human-readable description of what differs.
    pub detail: String,
}

impl std::fmt::Display for SummaryDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.name, self.detail)
    }
}

/// Parses the output of [`render_summary`](crate::render_summary) back
/// into named metric values.
///
/// Returns [`Error::ParseTrace`] (with the 1-based line number) on any
/// line that is not a counter, histogram, empty-histogram, or blank line.
pub fn parse_summary(text: &str) -> Result<BTreeMap<String, SummaryValue>> {
    let mut out = BTreeMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.trim().is_empty() {
            continue;
        }
        let (name, rest) = split_name(line).ok_or_else(|| Error::ParseTrace {
            line: idx + 1,
            reason: format!("expected `<name>  <value>`, got {line:?}"),
        })?;
        let value = parse_value(rest).ok_or_else(|| Error::ParseTrace {
            line: idx + 1,
            reason: format!("unrecognised metric value {rest:?}"),
        })?;
        out.insert(name.to_string(), value);
    }
    Ok(out)
}

/// Splits `name<spaces>value` at the first run of whitespace.
fn split_name(line: &str) -> Option<(&str, &str)> {
    let name_end = line.find(char::is_whitespace)?;
    let rest = line[name_end..].trim_start();
    if rest.is_empty() {
        return None;
    }
    Some((&line[..name_end], rest))
}

fn parse_value(rest: &str) -> Option<SummaryValue> {
    if rest == "(empty)" {
        return Some(SummaryValue::EmptyHistogram);
    }
    if let Ok(v) = rest.parse::<u64>() {
        return Some(SummaryValue::Counter(v));
    }
    let mut n = None;
    let mut mean = None;
    let mut p50 = None;
    let mut p99 = None;
    let mut max = None;
    for field in rest.split_whitespace() {
        let (key, value) = field.split_once('=')?;
        match key {
            "n" => n = value.parse::<u64>().ok(),
            "mean" => mean = value.parse::<f64>().ok(),
            "p50" => p50 = value.parse::<f64>().ok(),
            "p99" => p99 = value.parse::<f64>().ok(),
            "max" => max = value.parse::<f64>().ok(),
            _ => return None,
        }
    }
    Some(SummaryValue::Histogram {
        n: n?,
        mean: mean?,
        p50: p50?,
        p99: p99?,
        max: max?,
    })
}

/// `true` when `a` and `b` agree to within relative tolerance `tol`:
/// `|a - b| <= tol * max(|a|, |b|)`. A tolerance of zero demands exact
/// equality.
fn close(a: f64, b: f64, tol: f64) -> bool {
    if a == b {
        return true;
    }
    (a - b).abs() <= tol * a.abs().max(b.abs())
}

/// Compares two parsed summaries and returns every divergence beyond
/// `tolerance` (relative, per value). Metrics present on only one side
/// are always reported.
pub fn diff_summaries(
    a: &BTreeMap<String, SummaryValue>,
    b: &BTreeMap<String, SummaryValue>,
    tolerance: f64,
) -> Vec<SummaryDiff> {
    let mut diffs = Vec::new();
    for (name, va) in a {
        let Some(vb) = b.get(name) else {
            diffs.push(SummaryDiff {
                name: name.clone(),
                detail: "only in first summary".to_string(),
            });
            continue;
        };
        compare(name, va, vb, tolerance, &mut diffs);
    }
    for name in b.keys() {
        if !a.contains_key(name) {
            diffs.push(SummaryDiff {
                name: name.clone(),
                detail: "only in second summary".to_string(),
            });
        }
    }
    diffs
}

fn compare(name: &str, a: &SummaryValue, b: &SummaryValue, tol: f64, diffs: &mut Vec<SummaryDiff>) {
    use SummaryValue::*;
    match (a, b) {
        (Counter(x), Counter(y)) => {
            if !close(*x as f64, *y as f64, tol) {
                diffs.push(SummaryDiff {
                    name: name.to_string(),
                    detail: format!("counter {x} vs {y}"),
                });
            }
        }
        (EmptyHistogram, EmptyHistogram) => {}
        (
            Histogram {
                n,
                mean,
                p50,
                p99,
                max,
            },
            Histogram {
                n: n2,
                mean: m2,
                p50: p502,
                p99: p992,
                max: max2,
            },
        ) => {
            let fields = [
                ("n", *n as f64, *n2 as f64),
                ("mean", *mean, *m2),
                ("p50", *p50, *p502),
                ("p99", *p99, *p992),
                ("max", *max, *max2),
            ];
            for (field, x, y) in fields {
                if !close(x, y, tol) {
                    diffs.push(SummaryDiff {
                        name: name.to_string(),
                        detail: format!("histogram {field}={x} vs {y}"),
                    });
                }
            }
        }
        _ => diffs.push(SummaryDiff {
            name: name.to_string(),
            detail: format!("kind mismatch: {} vs {}", kind(a), kind(b)),
        }),
    }
}

fn kind(v: &SummaryValue) -> &'static str {
    match v {
        SummaryValue::Counter(_) => "counter",
        SummaryValue::Histogram { .. } => "histogram",
        SummaryValue::EmptyHistogram => "empty histogram",
    }
}

/// Round-trip helper for tests and tools: renders `registry` and parses
/// it straight back.
pub fn parse_registry(registry: &MetricsRegistry) -> Result<BTreeMap<String, SummaryValue>> {
    parse_summary(&crate::render_summary(registry))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.add("emmc.requests", 12);
        reg.record("emmc.response_ms", 1.0);
        reg.record("emmc.response_ms", 3.0);
        reg.histogram("gc.pause_ms");
        reg
    }

    #[test]
    fn round_trips_rendered_summary() {
        let parsed = parse_registry(&registry()).expect("round trip");
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed["emmc.requests"], SummaryValue::Counter(12));
        assert_eq!(parsed["gc.pause_ms"], SummaryValue::EmptyHistogram);
        match &parsed["emmc.response_ms"] {
            SummaryValue::Histogram { n, mean, .. } => {
                assert_eq!(*n, 2);
                assert!((mean - 2.0).abs() < 0.01);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn identical_summaries_have_no_diff() {
        let a = parse_registry(&registry()).expect("parse");
        assert!(diff_summaries(&a, &a, 0.0).is_empty());
    }

    #[test]
    fn counter_drift_is_reported_and_tolerance_waives_it() {
        let a = parse_summary("reqs  100\n").expect("parse");
        let b = parse_summary("reqs  103\n").expect("parse");
        let diffs = diff_summaries(&a, &b, 0.0);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].detail.contains("100 vs 103"));
        assert!(diff_summaries(&a, &b, 0.05).is_empty());
    }

    #[test]
    fn histogram_field_drift_is_reported_per_field() {
        let a = parse_summary("h  n=2 mean=2.000 p50=1.000 p99=3.000 max=3.000\n").expect("a");
        let b = parse_summary("h  n=2 mean=2.000 p50=1.000 p99=9.000 max=9.000\n").expect("b");
        let diffs = diff_summaries(&a, &b, 0.01);
        assert_eq!(diffs.len(), 2);
        assert!(diffs.iter().any(|d| d.detail.contains("p99")));
        assert!(diffs.iter().any(|d| d.detail.contains("max")));
    }

    #[test]
    fn missing_and_extra_metrics_always_diff() {
        let a = parse_summary("only_a  1\nshared  2\n").expect("a");
        let b = parse_summary("shared  2\nonly_b  3\n").expect("b");
        let diffs = diff_summaries(&a, &b, 1.0);
        assert_eq!(diffs.len(), 2);
        assert!(diffs
            .iter()
            .any(|d| d.name == "only_a" && d.detail.contains("first")));
        assert!(diffs
            .iter()
            .any(|d| d.name == "only_b" && d.detail.contains("second")));
    }

    #[test]
    fn kind_mismatch_always_diffs() {
        let a = parse_summary("m  5\n").expect("a");
        let b = parse_summary("m  (empty)\n").expect("b");
        let diffs = diff_summaries(&a, &b, 1.0);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].detail.contains("kind mismatch"));
    }

    #[test]
    fn malformed_line_reports_line_number() {
        let err = parse_summary("good  1\nbad line here ???\n").expect_err("must fail");
        match err {
            Error::ParseTrace { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }
}
