//! Mergeable, canonically serializable metric snapshots.
//!
//! [`MetricsSnapshot`] is the aggregation primitive fleet-scale replay
//! needs (ROADMAP items 1–2): capture one snapshot per shard/run, `merge`
//! them in any grouping, and the result is *byte-identical* to the
//! snapshot of an equivalent single run — counters add exactly in `u64`,
//! histogram bucket counts add exactly in `u64`, and min/max are exact
//! order statistics. The one non-associative quantity, a histogram's
//! floating-point `sum`, is deliberately excluded from the canonical
//! encoding (summation order differs between split and single runs), so
//! canonical bytes compare equal exactly when the distributions match.

use std::fmt::Write as _;

use crate::registry::{Metric, MetricsRegistry};

/// A point-in-time copy of a [`MetricsRegistry`] that merges
/// deterministically and serializes canonically.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    registry: MetricsRegistry,
}

impl MetricsSnapshot {
    /// An empty snapshot (the identity element of [`merge`]).
    ///
    /// [`merge`]: MetricsSnapshot::merge
    pub fn new() -> Self {
        MetricsSnapshot::default()
    }

    /// Copies the current state of a registry.
    pub fn capture(registry: &MetricsRegistry) -> Self {
        MetricsSnapshot {
            registry: registry.clone(),
        }
    }

    /// The snapshot's metrics.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Folds another snapshot into this one: counters add, histogram
    /// buckets add, absent names are adopted. Associative and commutative
    /// on everything the canonical encoding covers.
    ///
    /// # Panics
    ///
    /// Panics if a name is a counter in one snapshot and a histogram in
    /// the other (inherited from [`MetricsRegistry::merge`]).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.registry.merge(&other.registry);
    }

    /// Canonical byte encoding: one line per metric, sorted by name.
    ///
    /// * `counter <name> <value>`
    /// * `hist <name> n=<count> min=<f64 bits as hex> max=<bits>
    ///   buckets=<i>:<c>,...` (non-zero buckets only)
    ///
    /// Two snapshots encode identically iff their counters and histogram
    /// distributions (bucket counts, count, min, max) are identical; the
    /// float `sum` is excluded because summation order makes it
    /// non-associative under merging.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = String::new();
        for (name, metric) in self.registry.iter_sorted() {
            match metric {
                Metric::Counter(v) => {
                    let _ = writeln!(out, "counter {name} {v}");
                }
                Metric::Histogram(h) => {
                    let _ = write!(
                        out,
                        "hist {name} n={} min={:016x} max={:016x} buckets=",
                        h.count(),
                        h.min().unwrap_or(0.0).to_bits(),
                        h.max().unwrap_or(0.0).to_bits(),
                    );
                    let mut first = true;
                    for (i, &c) in h.bucket_counts().iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        if !first {
                            out.push(',');
                        }
                        let _ = write!(out, "{i}:{c}");
                        first = false;
                    }
                    out.push('\n');
                }
            }
        }
        out.into_bytes()
    }
}

/// A streaming K-way tree merge of [`MetricsSnapshot`]s.
///
/// Feeding 100 000 per-device snapshots through a plain left fold works,
/// but every merge then touches an accumulator that has already absorbed
/// the whole fleet — the cost of merge *i* grows with the union of metric
/// names seen so far. The tree merger instead keeps one pending snapshot
/// per power-of-two level (a binary carry chain, like a binomial heap):
/// pushing snapshot `n` performs exactly as many merges as trailing one
/// bits in `n`, so the amortized merge depth is O(log n) and memory stays
/// flat at O(log n) snapshots regardless of fleet size.
///
/// Because [`MetricsSnapshot::merge`] is associative and commutative on
/// everything the canonical encoding covers, the tree shape is
/// unobservable: [`finish`](SnapshotTreeMerger::finish) is byte-identical
/// to a sequential fold in push order (pinned by proptest).
///
/// # Example
///
/// ```
/// use hps_obs::{MetricsRegistry, MetricsSnapshot, SnapshotTreeMerger};
///
/// let mut tree = SnapshotTreeMerger::new();
/// let mut seq = MetricsSnapshot::new();
/// for v in 1..=5u64 {
///     let mut reg = MetricsRegistry::new();
///     reg.add("reqs", v);
///     let snap = MetricsSnapshot::capture(&reg);
///     seq.merge(&snap);
///     tree.push(snap);
/// }
/// assert_eq!(tree.finish().canonical_bytes(), seq.canonical_bytes());
/// ```
#[derive(Clone, Debug, Default)]
pub struct SnapshotTreeMerger {
    /// `levels[i]`, when present, aggregates exactly 2^i pushed snapshots.
    levels: Vec<Option<MetricsSnapshot>>,
    pushed: u64,
}

impl SnapshotTreeMerger {
    /// An empty merger.
    pub fn new() -> Self {
        SnapshotTreeMerger::default()
    }

    /// Number of snapshots pushed so far.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Absorbs one snapshot, carry-merging equal-weight partials.
    pub fn push(&mut self, snapshot: MetricsSnapshot) {
        let mut carry = snapshot;
        for level in self.levels.iter_mut() {
            match level.take() {
                None => {
                    *level = Some(carry);
                    self.pushed += 1;
                    return;
                }
                Some(mut resident) => {
                    // Merge into the older (resident) partial so the fold
                    // order matches a sequential left fold exactly.
                    resident.merge(&carry);
                    carry = resident;
                }
            }
        }
        self.levels.push(Some(carry));
        self.pushed += 1;
    }

    /// Merges the remaining partials (oldest last, preserving left-fold
    /// order) into the final aggregate.
    pub fn finish(self) -> MetricsSnapshot {
        let mut acc: Option<MetricsSnapshot> = None;
        // Highest level holds the oldest pushes; fold downward so the
        // result is the same left fold a sequential merge would produce.
        for level in self.levels.into_iter().rev().flatten() {
            match acc.as_mut() {
                None => acc = Some(level),
                Some(a) => a.merge(&level),
            }
        }
        acc.unwrap_or_default()
    }
}

/// Tree-merges any number of snapshots; byte-identical to folding them
/// sequentially in iteration order. See [`SnapshotTreeMerger`].
pub fn merge_all(shards: impl IntoIterator<Item = MetricsSnapshot>) -> MetricsSnapshot {
    let mut tree = SnapshotTreeMerger::new();
    for shard in shards {
        tree.push(shard);
    }
    tree.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(pairs: &[(&str, u64)], samples: &[(&str, f64)]) -> MetricsSnapshot {
        let mut reg = MetricsRegistry::new();
        for &(name, v) in pairs {
            reg.add(name, v);
        }
        for &(name, s) in samples {
            reg.record(name, s);
        }
        MetricsSnapshot::capture(&reg)
    }

    #[test]
    fn merge_of_shards_matches_single_run() {
        let mut merged = shard(&[("reqs", 3)], &[("lat", 1.5), ("lat", 9.0)]);
        merged.merge(&shard(&[("reqs", 4), ("gc", 1)], &[("lat", 0.25)]));
        let single = shard(
            &[("reqs", 7), ("gc", 1)],
            &[("lat", 1.5), ("lat", 9.0), ("lat", 0.25)],
        );
        assert_eq!(merged.canonical_bytes(), single.canonical_bytes());
    }

    #[test]
    fn canonical_bytes_ignore_insertion_order() {
        let a = shard(&[("a", 1), ("z", 2)], &[("h", 4.0)]);
        let mut reg = MetricsRegistry::new();
        reg.record("h", 4.0);
        reg.add("z", 2);
        reg.add("a", 1);
        let b = MetricsSnapshot::capture(&reg);
        assert_eq!(a.canonical_bytes(), b.canonical_bytes());
    }

    #[test]
    fn distinct_distributions_encode_differently() {
        let a = shard(&[], &[("h", 1.0)]);
        let b = shard(&[], &[("h", 1024.0)]);
        assert_ne!(a.canonical_bytes(), b.canonical_bytes());
    }

    #[test]
    fn empty_snapshot_is_merge_identity() {
        let mut a = shard(&[("c", 5)], &[("h", 2.0)]);
        let before = a.canonical_bytes();
        a.merge(&MetricsSnapshot::new());
        assert_eq!(a.canonical_bytes(), before);
    }

    fn numbered(i: u64) -> MetricsSnapshot {
        shard(
            &[("reqs", i + 1), ("gc", i % 3)],
            &[("lat", (i % 17) as f64 + 0.5)],
        )
    }

    #[test]
    fn tree_merge_matches_sequential_fold() {
        for n in [0u64, 1, 2, 3, 7, 8, 31, 100] {
            let mut tree = SnapshotTreeMerger::new();
            let mut seq = MetricsSnapshot::new();
            for i in 0..n {
                seq.merge(&numbered(i));
                tree.push(numbered(i));
            }
            assert_eq!(tree.pushed(), n);
            assert_eq!(
                tree.finish().canonical_bytes(),
                seq.canonical_bytes(),
                "tree merge diverged at n={n}"
            );
        }
    }

    #[test]
    fn tree_merge_memory_is_logarithmic() {
        let mut tree = SnapshotTreeMerger::new();
        for i in 0..1024u64 {
            tree.push(numbered(i));
        }
        assert!(
            tree.levels.len() <= 11,
            "1024 pushes must hold at most ~log2(n)+1 partials, got {}",
            tree.levels.len()
        );
    }

    #[test]
    fn merge_all_helper_agrees() {
        let snaps: Vec<MetricsSnapshot> = (0..13).map(numbered).collect();
        let mut seq = MetricsSnapshot::new();
        for s in &snaps {
            seq.merge(s);
        }
        assert_eq!(merge_all(snaps).canonical_bytes(), seq.canonical_bytes());
    }
}
