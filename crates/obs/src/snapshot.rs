//! Mergeable, canonically serializable metric snapshots.
//!
//! [`MetricsSnapshot`] is the aggregation primitive fleet-scale replay
//! needs (ROADMAP items 1–2): capture one snapshot per shard/run, `merge`
//! them in any grouping, and the result is *byte-identical* to the
//! snapshot of an equivalent single run — counters add exactly in `u64`,
//! histogram bucket counts add exactly in `u64`, and min/max are exact
//! order statistics. The one non-associative quantity, a histogram's
//! floating-point `sum`, is deliberately excluded from the canonical
//! encoding (summation order differs between split and single runs), so
//! canonical bytes compare equal exactly when the distributions match.

use std::fmt::Write as _;

use crate::registry::{Metric, MetricsRegistry};

/// A point-in-time copy of a [`MetricsRegistry`] that merges
/// deterministically and serializes canonically.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    registry: MetricsRegistry,
}

impl MetricsSnapshot {
    /// An empty snapshot (the identity element of [`merge`]).
    ///
    /// [`merge`]: MetricsSnapshot::merge
    pub fn new() -> Self {
        MetricsSnapshot::default()
    }

    /// Copies the current state of a registry.
    pub fn capture(registry: &MetricsRegistry) -> Self {
        MetricsSnapshot {
            registry: registry.clone(),
        }
    }

    /// The snapshot's metrics.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Folds another snapshot into this one: counters add, histogram
    /// buckets add, absent names are adopted. Associative and commutative
    /// on everything the canonical encoding covers.
    ///
    /// # Panics
    ///
    /// Panics if a name is a counter in one snapshot and a histogram in
    /// the other (inherited from [`MetricsRegistry::merge`]).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.registry.merge(&other.registry);
    }

    /// Canonical byte encoding: one line per metric, sorted by name.
    ///
    /// * `counter <name> <value>`
    /// * `hist <name> n=<count> min=<f64 bits as hex> max=<bits>
    ///   buckets=<i>:<c>,...` (non-zero buckets only)
    ///
    /// Two snapshots encode identically iff their counters and histogram
    /// distributions (bucket counts, count, min, max) are identical; the
    /// float `sum` is excluded because summation order makes it
    /// non-associative under merging.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = String::new();
        for (name, metric) in self.registry.iter_sorted() {
            match metric {
                Metric::Counter(v) => {
                    let _ = writeln!(out, "counter {name} {v}");
                }
                Metric::Histogram(h) => {
                    let _ = write!(
                        out,
                        "hist {name} n={} min={:016x} max={:016x} buckets=",
                        h.count(),
                        h.min().unwrap_or(0.0).to_bits(),
                        h.max().unwrap_or(0.0).to_bits(),
                    );
                    let mut first = true;
                    for (i, &c) in h.bucket_counts().iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        if !first {
                            out.push(',');
                        }
                        let _ = write!(out, "{i}:{c}");
                        first = false;
                    }
                    out.push('\n');
                }
            }
        }
        out.into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(pairs: &[(&str, u64)], samples: &[(&str, f64)]) -> MetricsSnapshot {
        let mut reg = MetricsRegistry::new();
        for &(name, v) in pairs {
            reg.add(name, v);
        }
        for &(name, s) in samples {
            reg.record(name, s);
        }
        MetricsSnapshot::capture(&reg)
    }

    #[test]
    fn merge_of_shards_matches_single_run() {
        let mut merged = shard(&[("reqs", 3)], &[("lat", 1.5), ("lat", 9.0)]);
        merged.merge(&shard(&[("reqs", 4), ("gc", 1)], &[("lat", 0.25)]));
        let single = shard(
            &[("reqs", 7), ("gc", 1)],
            &[("lat", 1.5), ("lat", 9.0), ("lat", 0.25)],
        );
        assert_eq!(merged.canonical_bytes(), single.canonical_bytes());
    }

    #[test]
    fn canonical_bytes_ignore_insertion_order() {
        let a = shard(&[("a", 1), ("z", 2)], &[("h", 4.0)]);
        let mut reg = MetricsRegistry::new();
        reg.record("h", 4.0);
        reg.add("z", 2);
        reg.add("a", 1);
        let b = MetricsSnapshot::capture(&reg);
        assert_eq!(a.canonical_bytes(), b.canonical_bytes());
    }

    #[test]
    fn distinct_distributions_encode_differently() {
        let a = shard(&[], &[("h", 1.0)]);
        let b = shard(&[], &[("h", 1024.0)]);
        assert_ne!(a.canonical_bytes(), b.canonical_bytes());
    }

    #[test]
    fn empty_snapshot_is_merge_identity() {
        let mut a = shard(&[("c", 5)], &[("h", 2.0)]);
        let before = a.canonical_bytes();
        a.merge(&MetricsSnapshot::new());
        assert_eq!(a.canonical_bytes(), before);
    }
}
