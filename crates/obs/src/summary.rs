//! Plain-text rendering of a [`MetricsRegistry`].

use std::fmt::Write as _;

use crate::registry::{Metric, MetricsRegistry};

/// Renders the registry as an aligned text table: counters as bare
/// values, histograms as `count / mean / p50 / p99 / max`.
pub fn render_summary(registry: &MetricsRegistry) -> String {
    let entries = registry.iter_sorted();
    let width = entries.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (name, metric) in entries {
        match metric {
            Metric::Counter(v) => {
                let _ = writeln!(out, "{name:<width$}  {v}");
            }
            Metric::Histogram(h) => {
                if h.count() == 0 {
                    let _ = writeln!(out, "{name:<width$}  (empty)");
                } else {
                    let _ = writeln!(
                        out,
                        "{name:<width$}  n={} mean={:.3} p50={:.3} p99={:.3} max={:.3}",
                        h.count(),
                        h.mean(),
                        h.quantile(0.50).unwrap_or(0.0),
                        h.quantile(0.99).unwrap_or(0.0),
                        h.max().unwrap_or(0.0),
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counters_and_histograms() {
        let mut reg = MetricsRegistry::new();
        reg.add("emmc.requests", 12);
        reg.record("emmc.response_ms", 1.0);
        reg.record("emmc.response_ms", 3.0);
        reg.histogram("empty.hist");
        let text = render_summary(&reg);
        assert!(text.contains("emmc.requests"));
        assert!(text.contains("12"));
        assert!(text.contains("n=2"));
        assert!(text.contains("(empty)"));
    }
}
