//! Minimal JSON support for the exporters and their tests.
//!
//! The build environment cannot fetch serde, and the exporters only need
//! to *write* flat objects and arrays, so this module provides an escape
//! helper plus a small recursive-descent parser ([`parse`]) used by the
//! test suite (and the `trace-tool summary` path) to read exported files
//! back.

use std::fmt::Write as _;

/// Escapes `s` for inclusion in a JSON string literal (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON number (finite values only; callers must
/// filter NaN/infinities first).
pub fn number(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                // lint: allow(no-unwrap) -- infallible by construction; the message documents the invariant
                let c = rest.chars().next().expect("non-empty by construction");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_escapes() {
        let s = "a\"b\\c\nd\te\u{1}";
        let doc = format!("\"{}\"", escape(s));
        assert_eq!(parse(&doc).unwrap(), Value::Str(s.to_string()));
    }

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x"}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn number_formatting() {
        assert_eq!(number(3.0), "3");
        assert_eq!(number(3.25), "3.25");
        assert_eq!(number(-0.5), "-0.5");
    }
}
