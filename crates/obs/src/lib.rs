//! Cross-layer telemetry for the eMMC reproduction.
//!
//! The paper's whole method rests on *seeing inside* the I/O stack —
//! BIOtracer exists because block-level behaviour is invisible from
//! userspace. This crate gives the simulator the same power over itself:
//!
//! * [`event`] — the request-lifecycle event model: arrival → queue →
//!   split → per-chunk flash op → completion, plus GC, cache, power, and
//!   I/O-stack events, all keyed by request id and simulated time;
//! * [`sink`] — the [`Sink`] trait events flow into, with a buffering
//!   [`VecSink`] and the no-op fast path (recording costs one branch when
//!   disabled);
//! * [`registry`] — [`MetricsRegistry`]: named counters and log-bucketed
//!   [`LogHistogram`]s, mergeable so parallel replays can aggregate;
//! * [`profile`] — the always-on, zero-allocation phase-accounting
//!   profiler: sampled [`RequestTimer`]/[`PhaseTimer`] guards attribute
//!   each request's host wall time to fixed stack phases;
//! * [`snapshot`] — [`MetricsSnapshot`]: point-in-time registry copies
//!   with a deterministic merge and canonical byte encoding, the
//!   primitive for fleet-scale aggregation;
//! * [`chrome`] — Chrome `trace_event` JSON export (open in Perfetto or
//!   `chrome://tracing`), one track per channel/die plus GC, stack, and
//!   request tracks;
//! * [`jsonl`] — a line-per-event JSON stream for ad-hoc analysis;
//! * [`stream`] — [`JsonlStreamSink`]: the same JSONL, written to disk
//!   through a `BufWriter` as events are emitted, so long replays never
//!   buffer their event stream in memory;
//! * [`summary`] — a plain-text registry report;
//! * [`table`] — deterministic fixed-width text tables, the renderer the
//!   fleet engine's cross-device reports are built from;
//! * [`json`] — the dependency-free JSON writer/parser behind the
//!   exporters (the build environment has no serde).
//!
//! The [`Telemetry`] bundle (registry + optional recorder) is what the
//! simulation layers carry: `hps-emmc` attaches one to a device, `hps-ftl`
//! and `hps-iostack` record through it when present, and `hps-bench`'s
//! `repro`/`trace-tool` binaries expose it via `--trace-out` /
//! `--metrics-out`.

pub mod chrome;
pub mod diff;
pub mod event;
pub mod json;
pub mod jsonl;
pub mod profile;
pub mod registry;
pub mod sink;
pub mod snapshot;
pub mod stream;
pub mod summary;
pub mod table;

pub use chrome::write_chrome_trace;
pub use diff::{diff_summaries, parse_summary, SummaryDiff, SummaryValue};
pub use event::{AckKind, Event, EventKind, OpClass, Track};
pub use jsonl::{write_jsonl, write_jsonl_event};
pub use profile::{Phase, PhaseTimer, ProfileReport, RequestTimer};
pub use registry::{CounterId, HistogramId, LogHistogram, Metric, MetricsRegistry};
pub use sink::{NullSink, Sink, Telemetry, VecSink};
pub use snapshot::{merge_all, MetricsSnapshot, SnapshotTreeMerger};
pub use stream::{JsonlStreamSink, StreamStats};
pub use summary::render_summary;
pub use table::TextTable;
