//! Event sinks and the [`Telemetry`] bundle the simulation layers carry.
//!
//! The hot path is `Option<&mut Telemetry>`: when the option is `None`
//! (the default everywhere) instrumented code pays a single branch and
//! allocates nothing. When present, counters always update; lifecycle
//! events are additionally recorded only if a recorder is attached, so a
//! metrics-only run skips event construction entirely
//! ([`Telemetry::recording`] gates the `Event` builders).

use crate::event::Event;
use crate::registry::MetricsRegistry;

#[cfg(any(debug_assertions, feature = "sanitize"))]
use hps_core::audit::SpanLedger;
use hps_core::audit::Violation;

/// Receives telemetry events as they are emitted.
pub trait Sink {
    /// Called once per event, in emission order.
    fn record(&mut self, event: &Event);
}

/// A sink that drops everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&mut self, _event: &Event) {}
}

/// A sink that buffers events in memory for later export.
#[derive(Clone, Debug, Default)]
pub struct VecSink {
    events: Vec<Event>,
}

impl VecSink {
    /// An empty buffer.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// The buffered events, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Consumes the sink, yielding the buffered events.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

impl Sink for VecSink {
    fn record(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

enum Recorder {
    Off,
    Buffer(VecSink),
    Custom(Box<dyn Sink>),
}

/// The telemetry bundle: a metrics registry plus an optional event
/// recorder.
pub struct Telemetry {
    /// Named counters and histograms; always live while attached.
    pub registry: MetricsRegistry,
    recorder: Recorder,
    /// Span-balance auditor (debug builds + `sanitize` feature): every
    /// opened request-lifecycle span must be closed exactly once.
    #[cfg(any(debug_assertions, feature = "sanitize"))]
    ledger: SpanLedger,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::registry_only()
    }
}

impl Telemetry {
    /// Metrics only: counters/histograms update, events are dropped.
    pub fn registry_only() -> Self {
        Telemetry {
            registry: MetricsRegistry::new(),
            recorder: Recorder::Off,
            #[cfg(any(debug_assertions, feature = "sanitize"))]
            ledger: SpanLedger::new(),
        }
    }

    /// Metrics plus an in-memory event buffer (drain with
    /// [`Telemetry::take_events`]).
    pub fn tracing() -> Self {
        Telemetry {
            registry: MetricsRegistry::new(),
            recorder: Recorder::Buffer(VecSink::new()),
            #[cfg(any(debug_assertions, feature = "sanitize"))]
            ledger: SpanLedger::new(),
        }
    }

    /// Metrics plus a caller-supplied streaming sink.
    pub fn with_sink(sink: Box<dyn Sink>) -> Self {
        Telemetry {
            registry: MetricsRegistry::new(),
            recorder: Recorder::Custom(sink),
            #[cfg(any(debug_assertions, feature = "sanitize"))]
            ledger: SpanLedger::new(),
        }
    }

    /// `true` if an event recorder is attached. Instrumented code checks
    /// this before building `Event` values so metrics-only runs skip the
    /// allocation and formatting work.
    pub fn recording(&self) -> bool {
        !matches!(self.recorder, Recorder::Off)
    }

    /// Records one event if a recorder is attached.
    pub fn emit(&mut self, event: Event) {
        match &mut self.recorder {
            Recorder::Off => {}
            Recorder::Buffer(buf) => buf.record(&event),
            Recorder::Custom(sink) => sink.record(&event),
        }
    }

    /// Drains the buffered events; empty if the recorder is not the
    /// in-memory buffer.
    pub fn take_events(&mut self) -> Vec<Event> {
        match &mut self.recorder {
            Recorder::Buffer(buf) => std::mem::take(&mut buf.events),
            _ => Vec::new(),
        }
    }

    /// Marks a request-lifecycle span as opened in the balance ledger.
    ///
    /// A no-op shell in un-sanitized release builds; the instrumented
    /// layers call it unconditionally. Panics (via the auditor) if the
    /// same span id is opened twice without an intervening close.
    #[allow(unused_variables)]
    #[inline]
    pub fn span_open(&mut self, id: u64, now_ns: u64) {
        #[cfg(any(debug_assertions, feature = "sanitize"))]
        hps_core::audit::enforce(self.ledger.try_open(id, now_ns));
    }

    /// Marks a request-lifecycle span as closed in the balance ledger.
    /// Panics (via the auditor) on a close without a matching open.
    #[allow(unused_variables)]
    #[inline]
    pub fn span_close(&mut self, id: u64, now_ns: u64) {
        #[cfg(any(debug_assertions, feature = "sanitize"))]
        hps_core::audit::enforce(self.ledger.try_close(id, now_ns));
    }

    /// End-of-run balance check: every opened span must have been closed.
    ///
    /// Always `Ok` in un-sanitized release builds.
    ///
    /// # Errors
    ///
    /// Returns the [`Violation`] describing the first still-open span.
    #[allow(unused_variables)]
    pub fn audit_span_balance(&self, now_ns: u64) -> Result<(), Violation> {
        #[cfg(any(debug_assertions, feature = "sanitize"))]
        return self.ledger.try_drained(now_ns);
        #[cfg(not(any(debug_assertions, feature = "sanitize")))]
        Ok(())
    }

    /// Number of lifecycle spans currently open (always 0 in un-sanitized
    /// release builds).
    pub fn open_spans(&self) -> usize {
        #[cfg(any(debug_assertions, feature = "sanitize"))]
        return self.ledger.open_count();
        #[cfg(not(any(debug_assertions, feature = "sanitize")))]
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use hps_core::SimTime;

    fn gc_pass(at_ns: u64) -> Event {
        Event::instant(
            SimTime::from_ns(at_ns),
            EventKind::GcPass {
                ops: 1,
                idle: false,
            },
        )
    }

    #[test]
    fn registry_only_drops_events() {
        let mut tel = Telemetry::registry_only();
        assert!(!tel.recording());
        tel.emit(gc_pass(5));
        assert!(tel.take_events().is_empty());
    }

    #[test]
    fn tracing_buffers_in_order() {
        let mut tel = Telemetry::tracing();
        assert!(tel.recording());
        tel.emit(gc_pass(5));
        tel.emit(gc_pass(9));
        let events = tel.take_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].start, SimTime::from_ns(5));
        assert_eq!(events[1].start, SimTime::from_ns(9));
        assert!(tel.take_events().is_empty());
    }

    #[test]
    fn custom_sink_receives_events() {
        struct Count(u32);
        impl Sink for Count {
            fn record(&mut self, _event: &Event) {
                self.0 += 1;
            }
        }
        let mut tel = Telemetry::with_sink(Box::new(NullSink));
        assert!(tel.recording());
        tel.emit(gc_pass(1));
        let mut counting = Telemetry::with_sink(Box::new(Count(0)));
        counting.emit(gc_pass(1));
        counting.emit(gc_pass(2));
        // The sink is owned by the telemetry; we can only observe via
        // behaviourally visible effects, so this test just exercises the path.
        assert!(counting.take_events().is_empty());
    }
}
