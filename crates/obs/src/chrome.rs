//! Chrome `trace_event` JSON export.
//!
//! Produces the JSON Object Format understood by Perfetto and
//! `chrome://tracing`: spans as `"ph":"X"` complete events, instantaneous
//! events as `"ph":"i"`, per-plane queue-depth and garbage-ratio samples
//! as `"ph":"C"` counter tracks, and one metadata record per track naming
//! the Perfetto "thread" it renders on (requests, io-stack, gc, power,
//! one `chN/dieM` track per die, and one counter pair per plane).
//! Timestamps are microseconds of
//! simulated time; events are written in timestamp order, so every track
//! is monotone non-decreasing in `ts`.

use std::collections::BTreeSet;
use std::io::{self, Write};

use crate::event::{Event, EventKind, Track};
use crate::json::{escape, number};

/// The process id all tracks share (there is one simulated device).
const PID: u64 = 0;

fn category(track: Track) -> &'static str {
    match track {
        Track::Requests => "request",
        Track::Stack => "stack",
        Track::Gc => "gc",
        Track::Power => "power",
        Track::Die { .. } => "flash",
        Track::PlaneQueue { .. } | Track::PlaneGarbage { .. } => "counter",
    }
}

fn args_json(kind: &EventKind) -> String {
    match kind {
        EventKind::Request {
            id,
            dir,
            bytes,
            lba,
        } => format!(
            "{{\"id\":{id},\"dir\":\"{}\",\"bytes\":{bytes},\"lba\":{lba}}}",
            dir.code()
        ),
        EventKind::QueueWait { id } | EventKind::Wakeup { id } => format!("{{\"id\":{id}}}"),
        EventKind::Split { id, chunks } => format!("{{\"id\":{id},\"chunks\":{chunks}}}"),
        EventKind::FlashOp {
            request,
            op,
            channel,
            die,
            bytes,
            gc,
        } => {
            let req = match request {
                Some(id) => id.to_string(),
                None => "null".to_string(),
            };
            format!(
                "{{\"request\":{req},\"op\":\"{}\",\"channel\":{channel},\"die\":{die},\"bytes\":{bytes},\"gc\":{gc}}}",
                op.name()
            )
        }
        EventKind::GcPass { ops, idle } => format!("{{\"ops\":{ops},\"idle\":{idle}}}"),
        EventKind::CacheAck { id, kind } => {
            format!("{{\"id\":{id},\"kind\":\"{}\"}}", kind.name())
        }
        EventKind::Command { members, bytes } => {
            format!("{{\"members\":{members},\"bytes\":{bytes}}}")
        }
        EventKind::PowerSleep => "{}".to_string(),
        // Counter events: Chrome renders each args key as a series.
        EventKind::PlaneQueueDepth { depth, .. } => format!("{{\"depth\":{depth}}}"),
        EventKind::PlaneGarbageRatio { ratio, .. } => {
            format!("{{\"garbage\":{}}}", number(*ratio))
        }
    }
}

/// `true` for kinds rendered as `"ph":"C"` counter samples rather than
/// spans or instants.
fn is_counter(kind: &EventKind) -> bool {
    matches!(
        kind,
        EventKind::PlaneQueueDepth { .. } | EventKind::PlaneGarbageRatio { .. }
    )
}

/// Writes `events` as a Chrome trace (JSON Object Format).
///
/// Events may be passed in any order; the export sorts by start time so
/// per-track timestamps are monotone. Load the resulting file in Perfetto
/// (<https://ui.perfetto.dev>) or `chrome://tracing`.
pub fn write_chrome_trace<W: Write>(events: &[Event], mut w: W) -> io::Result<()> {
    // Sort indices by start time (stable: ties keep emission order).
    let mut order: Vec<usize> = (0..events.len()).collect();
    order.sort_by_key(|&i| events[i].start);

    // Name each track that actually appears, in tid order.
    let tracks: BTreeSet<Track> = events.iter().map(Event::track).collect();
    let mut named: Vec<Track> = tracks.into_iter().collect();
    named.sort_by_key(Track::tid);

    writeln!(w, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
    let mut first = true;
    let sep = |w: &mut W, first: &mut bool| -> io::Result<()> {
        if *first {
            *first = false;
            Ok(())
        } else {
            writeln!(w, ",")
        }
    };

    for track in named {
        sep(&mut w, &mut first)?;
        write!(
            w,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            track.tid(),
            escape(&track.label())
        )?;
        sep(&mut w, &mut first)?;
        write!(
            w,
            "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{},\"args\":{{\"sort_index\":{}}}}}",
            track.tid(),
            track.tid()
        )?;
    }

    for &i in &order {
        let event = &events[i];
        let track = event.track();
        let ts_us = event.start.as_ns() as f64 / 1_000.0;
        sep(&mut w, &mut first)?;
        if is_counter(&event.kind) {
            write!(
                w,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":{PID},\"tid\":{},\"args\":{}}}",
                escape(&event.name()),
                category(track),
                number(ts_us),
                track.tid(),
                args_json(&event.kind)
            )?;
        } else if event.dur.is_zero() {
            write!(
                w,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{PID},\"tid\":{},\"args\":{}}}",
                escape(&event.name()),
                category(track),
                number(ts_us),
                track.tid(),
                args_json(&event.kind)
            )?;
        } else {
            let dur_us = event.dur.as_ns() as f64 / 1_000.0;
            write!(
                w,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{PID},\"tid\":{},\"args\":{}}}",
                escape(&event.name()),
                category(track),
                number(ts_us),
                number(dur_us),
                track.tid(),
                args_json(&event.kind)
            )?;
        }
    }
    writeln!(w, "\n]}}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::OpClass;
    use crate::json;
    use hps_core::{Direction, SimDuration, SimTime};

    fn sample_events() -> Vec<Event> {
        vec![
            Event::span(
                SimTime::from_us(10),
                SimDuration::from_us(40),
                EventKind::Request {
                    id: 1,
                    dir: Direction::Write,
                    bytes: 4096,
                    lba: 8,
                },
            ),
            Event::instant(SimTime::from_us(12), EventKind::Split { id: 1, chunks: 2 }),
            Event::span(
                SimTime::from_us(12),
                SimDuration::from_us(20),
                EventKind::FlashOp {
                    request: Some(1),
                    op: OpClass::Program,
                    channel: 0,
                    die: 1,
                    bytes: 4096,
                    gc: false,
                },
            ),
            Event::span(
                SimTime::from_us(5),
                SimDuration::from_us(3),
                EventKind::GcPass { ops: 4, idle: true },
            ),
            Event::instant(
                SimTime::from_us(32),
                EventKind::PlaneQueueDepth { plane: 2, depth: 3 },
            ),
            Event::instant(
                SimTime::from_us(32),
                EventKind::PlaneGarbageRatio {
                    plane: 2,
                    ratio: 0.25,
                },
            ),
        ]
    }

    #[test]
    fn export_is_valid_json_with_named_tracks() {
        let mut out = Vec::new();
        write_chrome_trace(&sample_events(), &mut out).unwrap();
        let doc = json::parse(std::str::from_utf8(&out).unwrap()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .filter(|e| e.get("name").unwrap().as_str() == Some("thread_name"))
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
            })
            .collect();
        assert!(names.contains(&"requests"));
        assert!(names.contains(&"gc"));
        assert!(names.contains(&"ch0/die1"));
        assert!(names.contains(&"plane2 queue"));
        assert!(names.contains(&"plane2 garbage"));
    }

    #[test]
    fn plane_samples_become_counter_events() {
        let mut out = Vec::new();
        write_chrome_trace(&sample_events(), &mut out).unwrap();
        let doc = json::parse(std::str::from_utf8(&out).unwrap()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let counters: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("C"))
            .collect();
        assert_eq!(counters.len(), 2);
        let depth = counters
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("plane2 queue depth"))
            .expect("queue-depth counter");
        assert_eq!(
            depth.get("args").unwrap().get("depth").unwrap().as_f64(),
            Some(3.0)
        );
        let garbage = counters
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("plane2 garbage ratio"))
            .expect("garbage-ratio counter");
        assert_eq!(
            garbage
                .get("args")
                .unwrap()
                .get("garbage")
                .unwrap()
                .as_f64(),
            Some(0.25)
        );
    }

    #[test]
    fn timestamps_sorted_within_each_track() {
        let mut out = Vec::new();
        write_chrome_trace(&sample_events(), &mut out).unwrap();
        let doc = json::parse(std::str::from_utf8(&out).unwrap()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let mut last_ts: hps_core::hash::FxHashMap<u64, f64> = Default::default();
        for e in events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() != Some("M"))
        {
            let tid = e.get("tid").unwrap().as_f64().unwrap() as u64;
            let ts = e.get("ts").unwrap().as_f64().unwrap();
            if let Some(&prev) = last_ts.get(&tid) {
                assert!(ts >= prev, "track {tid} went backwards: {prev} -> {ts}");
            }
            last_ts.insert(tid, ts);
        }
        assert!(!last_ts.is_empty());
    }
}
