//! Always-on, zero-allocation phase-accounting profiler.
//!
//! Answers ROADMAP item 3's gating question — *where do the ~100 ns per
//! simulated request actually go?* — by attributing the host wall time of
//! every replayed request to a fixed set of phases (distributor split,
//! queue-wait bookkeeping, FTL map lookup, FTL read/write, GC victim
//! selection, GC copyback, NAND read/program/erase). The instrumented
//! layers create scoped guards:
//!
//! * [`request`] — one [`RequestTimer`] per `EmmcDevice::submit`, the root
//!   of the per-request time budget;
//! * [`phase`] — a [`PhaseTimer`] per instrumented scope; phases nest, and
//!   *self time* (total minus children) is what each phase accumulates, so
//!   the per-phase shares always sum to exactly the measured request time
//!   (the remainder is attributed to the synthetic dispatch slot,
//!   [`OTHER_LABEL`]).
//!
//! # Overhead budget
//!
//! The profiler must cost < 5% of an ~100 ns hot path while *always on*,
//! so it samples: one request in `stride` (default 64) is timed end to
//! end. Disarmed guards cost one relaxed atomic load ([`PhaseTimer`]) or
//! one thread-local countdown decrement ([`RequestTimer`]); armed guards
//! read the TSC twice and push/pop a fixed-depth frame stack. Attribution
//! percentages are unaffected by the stride — only the sample count is.
//!
//! # Zero allocation
//!
//! All state lives in a `const`-initialized thread-local [`Accum`]: fixed
//! arrays of per-phase tick/entry counters, a bounded frame stack, and one
//! [`LogHistogram`] per phase (`LogHistogram::new` is `const`). Nothing
//! heap-allocates on either the disarmed or the armed path, preserving the
//! release-build zero-allocation contract of the replay hot path.
//!
//! # Clock
//!
//! On x86-64 the clock is the raw TSC (`rdtsc`); tick counts are converted
//! to nanoseconds only at report time via a one-shot calibration against
//! the OS monotonic clock ([`ticks_per_ns`]). Other targets fall back to
//! the OS clock directly. Profiler output is host-wall-time derived and
//! therefore *nondeterministic*; it is exported only through the
//! `repro profile` path, never into the deterministic `--metrics-out`
//! summaries that CI byte-compares.

use crate::registry::{LogHistogram, MetricsRegistry};
use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// The fixed phases a request's wall time is attributed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    /// Request → page-size-aligned chunks in the distributor.
    Split = 0,
    /// Device front end: idle-GC check, power wakeup/doze, service-start
    /// and queue bookkeeping.
    QueueWait = 1,
    /// LPN → PPN lookups in the mapping table.
    FtlMapLookup = 2,
    /// FTL write path: invalidation, allocation, residency update.
    FtlWrite = 3,
    /// FTL read path: op construction and read dedup.
    FtlRead = 4,
    /// GC victim selection (greedy max-invalid scan).
    GcSelect = 5,
    /// GC copyback: live-page migration and block erase bookkeeping.
    GcCopyback = 6,
    /// NAND read: op scheduling and array state transitions.
    NandRead = 7,
    /// NAND program: op scheduling and array state transitions.
    NandProgram = 8,
    /// NAND erase: op scheduling and array state transitions.
    NandErase = 9,
}

/// Number of real phases (excluding the synthetic dispatch slot).
pub const N_PHASES: usize = 10;
/// Number of attribution slots: the phases plus the dispatch remainder.
pub const N_SLOTS: usize = N_PHASES + 1;
/// Slot index of the synthetic dispatch remainder.
pub const OTHER_SLOT: usize = N_PHASES;
/// Label of the synthetic slot holding request time not covered by any
/// phase guard (dispatch, cache probes, metric recording).
pub const OTHER_LABEL: &str = "device.dispatch";

/// Maximum phase nesting depth tracked per request; deeper guards are
/// disarmed (their time folds into the enclosing phase's self time) and
/// counted in [`ProfileReport::truncated_frames`].
const MAX_DEPTH: usize = 8;

impl Phase {
    /// All phases, in slot order.
    pub const ALL: [Phase; N_PHASES] = [
        Phase::Split,
        Phase::QueueWait,
        Phase::FtlMapLookup,
        Phase::FtlWrite,
        Phase::FtlRead,
        Phase::GcSelect,
        Phase::GcCopyback,
        Phase::NandRead,
        Phase::NandProgram,
        Phase::NandErase,
    ];

    /// Stable metric-name label (`layer.phase` convention).
    pub fn label(self) -> &'static str {
        match self {
            Phase::Split => "distributor.split",
            Phase::QueueWait => "device.queue_wait",
            Phase::FtlMapLookup => "ftl.map_lookup",
            Phase::FtlWrite => "ftl.write",
            Phase::FtlRead => "ftl.read",
            Phase::GcSelect => "gc.select",
            Phase::GcCopyback => "gc.copyback",
            Phase::NandRead => "nand.read",
            Phase::NandProgram => "nand.program",
            Phase::NandErase => "nand.erase",
        }
    }

    /// Canonical folded-stack path for flamegraph output (semicolon
    /// separated, root first), matching where the phase nests on the
    /// common path.
    pub fn folded_stack(self) -> &'static str {
        match self {
            Phase::Split => "replay;submit;distributor.split",
            Phase::QueueWait => "replay;submit;device.queue_wait",
            Phase::FtlMapLookup => "replay;submit;ftl.read;ftl.map_lookup",
            Phase::FtlWrite => "replay;submit;ftl.write",
            Phase::FtlRead => "replay;submit;ftl.read",
            Phase::GcSelect => "replay;submit;ftl.write;gc.select",
            Phase::GcCopyback => "replay;submit;ftl.write;gc.copyback",
            Phase::NandRead => "replay;submit;nand.read",
            Phase::NandProgram => "replay;submit;nand.program",
            Phase::NandErase => "replay;submit;nand.erase",
        }
    }
}

/// Slot label: phase label for real slots, [`OTHER_LABEL`] for the
/// dispatch remainder.
pub fn slot_label(slot: usize) -> &'static str {
    if slot == OTHER_SLOT {
        OTHER_LABEL
    } else {
        Phase::ALL[slot].label()
    }
}

/// One open phase scope on the per-request frame stack.
#[derive(Clone, Copy)]
struct Frame {
    phase: u8,
    start: u64,
    child: u64,
}

const EMPTY_FRAME: Frame = Frame {
    phase: 0,
    start: 0,
    child: 0,
};

/// Per-thread accumulator; all storage is fixed-size so the profiler
/// never touches the heap.
struct Accum {
    stride: u32,
    armed: bool,
    /// Requests credited in whole-stride batches when a batch *starts*;
    /// subtract the unspent [`COUNTDOWN`] for the count actually seen.
    requests: u64,
    sampled: u64,
    req_start: u64,
    req_child: u64,
    ticks_total: u64,
    truncated: u64,
    depth: usize,
    frames: [Frame; MAX_DEPTH],
    phase_ticks: [u64; N_SLOTS],
    phase_entries: [u64; N_SLOTS],
    hists: [LogHistogram; N_PHASES],
}

impl Accum {
    const fn new() -> Self {
        Accum {
            stride: 0,
            armed: false,
            requests: 0,
            sampled: 0,
            req_start: 0,
            req_child: 0,
            ticks_total: 0,
            truncated: 0,
            depth: 0,
            frames: [EMPTY_FRAME; MAX_DEPTH],
            phase_ticks: [0; N_SLOTS],
            phase_entries: [0; N_SLOTS],
            hists: [const { LogHistogram::new() }; N_PHASES],
        }
    }

    fn clear_measurements(&mut self) {
        self.requests = 0;
        self.sampled = 0;
        self.req_start = 0;
        self.req_child = 0;
        self.ticks_total = 0;
        self.truncated = 0;
        self.depth = 0;
        self.phase_ticks = [0; N_SLOTS];
        self.phase_entries = [0; N_SLOTS];
        self.hists = [const { LogHistogram::new() }; N_PHASES];
    }
}

thread_local! {
    static ACCUM: RefCell<Accum> = const { RefCell::new(Accum::new()) };
    /// Requests left before the next sampled one. Kept outside [`ACCUM`]
    /// so the disarmed [`request`] fast path is a bare `Cell` get/set with
    /// no `RefCell` borrow bookkeeping.
    static COUNTDOWN: Cell<u32> = const { Cell::new(0) };
}

/// Number of threads currently inside an armed (sampled) request. The
/// disarmed [`phase`] fast path is a single relaxed load of this.
static ARMED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sampling stride adopted by threads that have not had
/// [`set_stride`] called on them. 64 keeps the always-on overhead
/// within the 5% hot-path budget.
static DEFAULT_STRIDE: AtomicU32 = AtomicU32::new(64);

/// Raw timestamp-counter read; monotone per thread at the resolution the
/// profiler needs. Converted to nanoseconds only at report time.
#[cfg(target_arch = "x86_64")]
#[inline]
fn now() -> u64 {
    // SAFETY-free intrinsic wrapper: `_rdtsc` has no preconditions.
    unsafe { core::arch::x86_64::_rdtsc() }
}

/// Fallback clock for non-x86-64 targets: OS monotonic nanoseconds.
#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn now() -> u64 {
    use std::time::Instant; // lint: allow(wall-clock) profiler measures host time by design
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Measured TSC ticks per nanosecond, calibrated once per process against
/// the OS monotonic clock. 1.0 on targets whose [`now`] already returns
/// nanoseconds.
pub fn ticks_per_ns() -> f64 {
    static CAL: OnceLock<f64> = OnceLock::new();
    *CAL.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            use std::time::Instant; // lint: allow(wall-clock) one-shot clock calibration
            let wall = Instant::now();
            let t0 = now();
            std::thread::sleep(std::time::Duration::from_millis(10));
            let ticks = now().saturating_sub(t0) as f64;
            let ns = wall.elapsed().as_nanos() as f64;
            if ns > 0.0 && ticks > 0.0 {
                ticks / ns
            } else {
                1.0
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            1.0
        }
    })
}

/// Root guard for one simulated request; created once per
/// `EmmcDevice::submit`. When disarmed (the common, sampled-out case) its
/// drop is a no-op.
#[must_use = "dropping the timer immediately records a zero-width request"]
pub struct RequestTimer {
    armed: bool,
    // Guards account into thread-local state; keep them on their thread.
    _not_send: PhantomData<*mut ()>,
}

/// Scoped guard for one phase; self time (total minus nested children) is
/// attributed to the phase when the guard drops.
#[must_use = "dropping the timer immediately records a zero-width phase"]
pub struct PhaseTimer {
    armed: bool,
    _not_send: PhantomData<*mut ()>,
}

/// Scoped guard for a *run* of same-class operations dispatched as one
/// batch (the event-wheel `schedule_batch` transaction). One guard covers
/// the whole run — one timestamp pair instead of one per op — while
/// [`RunPhaseTimer::bump`] counts each op so the report's entries/req
/// column stays comparable with per-op instrumentation. The per-entry
/// histogram records one observation per run (the run's total time).
#[must_use = "dropping the timer immediately records a zero-width phase"]
pub struct RunPhaseTimer {
    armed: bool,
    ops: u32,
    _not_send: PhantomData<*mut ()>,
}

/// Starts the per-request root timer. Call exactly once per submitted
/// request, before any [`phase`] guard; sampling (1 in `stride`) decides
/// whether this request is measured.
#[inline]
pub fn request() -> RequestTimer {
    let countdown = COUNTDOWN.with(|c| {
        let v = c.get();
        if v > 0 {
            c.set(v - 1);
        }
        v
    });
    if countdown > 0 {
        return RequestTimer {
            armed: false,
            _not_send: PhantomData,
        };
    }
    request_sampled()
}

#[cold]
#[inline(never)]
fn request_sampled() -> RequestTimer {
    let armed = ACCUM.with_borrow_mut(|a| {
        if a.stride == 0 {
            a.stride = DEFAULT_STRIDE.load(Ordering::Relaxed).max(1);
        }
        // Credit the whole upcoming batch now; `report` subtracts the
        // unspent countdown for the number of requests actually seen.
        a.requests += u64::from(a.stride);
        COUNTDOWN.with(|c| c.set(a.stride - 1));
        if a.armed {
            // A nested submit inside a measured request keeps the outer
            // timer; its time is already covered.
            return false;
        }
        a.armed = true;
        a.sampled += 1;
        a.req_child = 0;
        a.depth = 0;
        a.req_start = now();
        true
    });
    if armed {
        ARMED_THREADS.fetch_add(1, Ordering::Relaxed);
    }
    RequestTimer {
        armed,
        _not_send: PhantomData,
    }
}

impl Drop for RequestTimer {
    #[inline]
    fn drop(&mut self) {
        // The armed body stays outlined and cold so every `submit` carries
        // only this test-and-branch, not the accounting code.
        if self.armed {
            finish_request();
        }
    }
}

#[cold]
#[inline(never)]
fn finish_request() {
    let end = now();
    ACCUM.with_borrow_mut(|a| {
        let total = end.saturating_sub(a.req_start);
        a.ticks_total += total;
        a.phase_ticks[OTHER_SLOT] += total.saturating_sub(a.req_child);
        a.phase_entries[OTHER_SLOT] += 1;
        a.depth = 0;
        a.armed = false;
    });
    ARMED_THREADS.fetch_sub(1, Ordering::Relaxed);
}

/// Opens a phase scope. Disarmed unless the current request is sampled;
/// the disarmed fast path is one relaxed atomic load.
#[inline]
pub fn phase(p: Phase) -> PhaseTimer {
    if ARMED_THREADS.load(Ordering::Relaxed) == 0 {
        return PhaseTimer {
            armed: false,
            _not_send: PhantomData,
        };
    }
    phase_armed(p)
}

#[cold]
#[inline(never)]
fn phase_armed(p: Phase) -> PhaseTimer {
    let armed = ACCUM.with_borrow_mut(|a| {
        if !a.armed {
            // Another thread is sampling; this one is not.
            return false;
        }
        if a.depth >= MAX_DEPTH {
            a.truncated += 1;
            return false;
        }
        a.frames[a.depth] = Frame {
            phase: p as u8,
            start: now(),
            child: 0,
        };
        a.depth += 1;
        true
    });
    PhaseTimer {
        armed,
        _not_send: PhantomData,
    }
}

impl Drop for PhaseTimer {
    #[inline]
    fn drop(&mut self) {
        // Outlined armed body: every instrumented scope end pays only a
        // test-and-branch on the common disarmed path.
        if self.armed {
            finish_phase(1);
        }
    }
}

/// Opens a phase scope covering a batch of same-class operations. The
/// disarmed fast path matches [`phase`]: one relaxed atomic load.
#[inline]
pub fn phase_run(p: Phase) -> RunPhaseTimer {
    if ARMED_THREADS.load(Ordering::Relaxed) == 0 {
        return RunPhaseTimer {
            armed: false,
            ops: 0,
            _not_send: PhantomData,
        };
    }
    let inner = phase_armed(p);
    let armed = inner.armed;
    core::mem::forget(inner); // the run timer owns the frame now
    RunPhaseTimer {
        armed,
        ops: 0,
        _not_send: PhantomData,
    }
}

impl RunPhaseTimer {
    /// Counts one operation against this run's entry total.
    #[inline]
    pub fn bump(&mut self) {
        if self.armed {
            self.ops += 1;
        }
    }
}

impl Drop for RunPhaseTimer {
    #[inline]
    fn drop(&mut self) {
        if self.armed {
            finish_phase(self.ops.max(1));
        }
    }
}

#[cold]
#[inline(never)]
fn finish_phase(entries: u32) {
    let end = now();
    ACCUM.with_borrow_mut(|a| {
        debug_assert!(a.depth > 0, "armed PhaseTimer dropped with empty stack");
        if a.depth == 0 {
            return;
        }
        a.depth -= 1;
        let frame = a.frames[a.depth];
        let total = end.saturating_sub(frame.start);
        let slot = frame.phase as usize;
        a.phase_ticks[slot] += total.saturating_sub(frame.child);
        a.phase_entries[slot] += u64::from(entries);
        a.hists[slot].observe(total as f64);
        if a.depth > 0 {
            a.frames[a.depth - 1].child += total;
        } else {
            a.req_child += total;
        }
    });
}

/// Sets the sampling stride (1 = measure every request) for the calling
/// thread and for threads that start sampling afterwards.
pub fn set_stride(stride: u32) {
    let stride = stride.max(1);
    DEFAULT_STRIDE.store(stride, Ordering::Relaxed);
    let unspent = COUNTDOWN.with(|c| c.replace(0));
    ACCUM.with_borrow_mut(|a| {
        a.stride = stride;
        // Un-credit the cut-short batch so the request count stays exact.
        a.requests = a.requests.saturating_sub(u64::from(unspent));
    });
}

/// Clears the calling thread's accumulated measurements (stride is kept).
/// Call between requests, not inside an open request scope.
pub fn reset() {
    COUNTDOWN.with(|c| c.set(0));
    let was_armed = ACCUM.with_borrow_mut(|a| {
        let was = a.armed;
        a.armed = false;
        a.clear_measurements();
        was
    });
    if was_armed {
        ARMED_THREADS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Point-in-time copy of the calling thread's per-slot self ticks —
/// the cheap read the live `--progress` heartbeat diffs between prints.
pub fn phase_ticks_snapshot() -> [u64; N_SLOTS] {
    ACCUM.with_borrow(|a| a.phase_ticks)
}

/// Everything the profiler measured on the calling thread, in raw ticks.
#[derive(Clone, Debug)]
pub struct ProfileReport {
    /// Requests seen (sampled or not).
    pub requests: u64,
    /// Requests measured end to end.
    pub sampled: u64,
    /// Sampling stride in effect.
    pub stride: u32,
    /// Total measured ticks across sampled requests; equals the sum of
    /// all slot self ticks by construction.
    pub ticks_total: u64,
    /// Phase guards disarmed because the frame stack was full.
    pub truncated_frames: u64,
    /// Per-slot self ticks (index [`OTHER_SLOT`] is the dispatch
    /// remainder).
    pub phase_ticks: [u64; N_SLOTS],
    /// Per-slot scope entries.
    pub phase_entries: [u64; N_SLOTS],
    /// Per-phase distribution of *total* (self + children) ticks per
    /// scope entry.
    pub hists: [LogHistogram; N_PHASES],
}

/// Snapshots the calling thread's measurements without clearing them.
pub fn report() -> ProfileReport {
    let unspent = COUNTDOWN.with(Cell::get);
    ACCUM.with_borrow(|a| ProfileReport {
        requests: a.requests.saturating_sub(u64::from(unspent)),
        sampled: a.sampled,
        stride: if a.stride == 0 {
            DEFAULT_STRIDE.load(Ordering::Relaxed)
        } else {
            a.stride
        },
        ticks_total: a.ticks_total,
        truncated_frames: a.truncated,
        phase_ticks: a.phase_ticks,
        phase_entries: a.phase_entries,
        hists: a.hists.clone(),
    })
}

impl ProfileReport {
    /// Per-slot share of the total measured time, in percent. Sums to
    /// exactly 100 (before display rounding) whenever anything was
    /// measured, because slot self times partition the request total.
    pub fn percentages(&self) -> [f64; N_SLOTS] {
        let mut out = [0.0; N_SLOTS];
        if self.ticks_total == 0 {
            return out;
        }
        for (share, &ticks) in out.iter_mut().zip(self.phase_ticks.iter()) {
            *share = 100.0 * ticks as f64 / self.ticks_total as f64;
        }
        out
    }

    /// Mean self nanoseconds per *sampled* request attributed to a slot.
    pub fn ns_per_request(&self, slot: usize) -> f64 {
        if self.sampled == 0 {
            return 0.0;
        }
        self.phase_ticks[slot] as f64 / ticks_per_ns() / self.sampled as f64
    }

    /// Mean measured nanoseconds per sampled request, all slots.
    pub fn total_ns_per_request(&self) -> f64 {
        if self.sampled == 0 {
            return 0.0;
        }
        self.ticks_total as f64 / ticks_per_ns() / self.sampled as f64
    }

    /// Folds another report into this one (same-host tick domains).
    pub fn merge(&mut self, other: &ProfileReport) {
        self.requests += other.requests;
        self.sampled += other.sampled;
        self.ticks_total += other.ticks_total;
        self.truncated_frames += other.truncated_frames;
        for (a, b) in self.phase_ticks.iter_mut().zip(other.phase_ticks.iter()) {
            *a += b;
        }
        for (a, b) in self
            .phase_entries
            .iter_mut()
            .zip(other.phase_entries.iter())
        {
            *a += b;
        }
        for (a, b) in self.hists.iter_mut().zip(other.hists.iter()) {
            a.merge(b);
        }
    }

    /// Exports the report into a registry under the `profile.*` namespace.
    ///
    /// Profiler values are host-wall-time derived and nondeterministic;
    /// export them into dedicated registries only, never into the
    /// deterministic replay summaries that CI byte-compares.
    pub fn export_into(&self, registry: &mut MetricsRegistry) {
        registry.add("profile.requests", self.requests);
        registry.add("profile.sampled", self.sampled);
        registry.add("profile.stride", u64::from(self.stride));
        registry.add("profile.ticks_total", self.ticks_total);
        registry.add("profile.truncated_frames", self.truncated_frames);
        for slot in 0..N_SLOTS {
            let label = slot_label(slot);
            registry.add(
                &format!("profile.phase.{label}.self_ticks"),
                self.phase_ticks[slot],
            );
            registry.add(
                &format!("profile.phase.{label}.entries"),
                self.phase_entries[slot],
            );
        }
        for (i, hist) in self.hists.iter().enumerate() {
            let id = registry.histogram(&format!("profile.phase.{}.ticks", Phase::ALL[i].label()));
            registry.merge_histogram(id, hist);
        }
    }

    /// Flamegraph-compatible folded-stack rendering: one line per slot,
    /// `stack<space>nanoseconds`, canonical stacks from
    /// [`Phase::folded_stack`]. Zero-time slots are omitted.
    pub fn render_folded(&self) -> String {
        let scale = ticks_per_ns();
        let mut out = String::new();
        let ns = |ticks: u64| (ticks as f64 / scale).round() as u64;
        if self.phase_ticks[OTHER_SLOT] > 0 {
            let _ = writeln!(out, "replay;submit {}", ns(self.phase_ticks[OTHER_SLOT]));
        }
        for p in Phase::ALL {
            let ticks = self.phase_ticks[p as usize];
            if ticks > 0 {
                let _ = writeln!(out, "{} {}", p.folded_stack(), ns(ticks));
            }
        }
        out
    }

    /// Top-down breakdown table: per-slot self ns/request, share of the
    /// total, scope entries per sampled request, and per-entry p50/p99
    /// (total time, in ns) where a distribution exists.
    pub fn render_table(&self) -> String {
        let scale = ticks_per_ns();
        let shares = self.percentages();
        let mut rows: Vec<usize> = (0..N_SLOTS).collect();
        rows.sort_by(|&a, &b| {
            self.phase_ticks[b]
                .cmp(&self.phase_ticks[a])
                .then(slot_label(a).cmp(slot_label(b)))
        });
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<22} {:>12} {:>7} {:>12} {:>10} {:>10}",
            "phase", "self ns/req", "%", "entries/req", "p50 ns", "p99 ns"
        );
        for slot in rows {
            if self.phase_ticks[slot] == 0 && self.phase_entries[slot] == 0 {
                continue;
            }
            let entries_per_req = if self.sampled == 0 {
                0.0
            } else {
                self.phase_entries[slot] as f64 / self.sampled as f64
            };
            let (p50, p99) = if slot < N_PHASES && self.hists[slot].count() > 0 {
                let h = &self.hists[slot];
                let q = |q: f64| h.quantile(q).unwrap_or(0.0) / scale;
                (format!("{:.0}", q(0.50)), format!("{:.0}", q(0.99)))
            } else {
                ("-".to_string(), "-".to_string())
            };
            let _ = writeln!(
                out,
                "{:<22} {:>12.1} {:>6.2}% {:>12.2} {:>10} {:>10}",
                slot_label(slot),
                self.ns_per_request(slot),
                shares[slot],
                entries_per_req,
                p50,
                p99,
            );
        }
        let _ = writeln!(
            out,
            "{:<22} {:>12.1} {:>6.2}% {:>12} {:>10} {:>10}",
            "total",
            self.total_ns_per_request(),
            shares.iter().sum::<f64>(), // lint: allow(float-accum) -- fixed-order phase array
            "",
            "",
            ""
        );
        let _ = writeln!(
            out,
            "sampled {} of {} requests (stride {}), {} truncated frames",
            self.sampled, self.requests, self.stride, self.truncated_frames
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(iters: u64) -> u64 {
        let mut acc = 0u64;
        for i in 0..iters {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc)
    }

    /// Serialized: profiler TLS is per-thread but `ARMED_THREADS` and the
    /// default stride are process-global, so tests must not interleave.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn self_times_partition_the_request_total() {
        let _guard = LOCK.lock().expect("profiler test lock");
        reset();
        set_stride(1);
        for _ in 0..50 {
            let _req = request();
            {
                let _w = phase(Phase::FtlWrite);
                spin(50);
                {
                    let _g = phase(Phase::GcSelect);
                    spin(50);
                }
            }
            let _n = phase(Phase::NandProgram);
            spin(20);
        }
        let rep = report();
        assert_eq!(rep.requests, 50);
        assert_eq!(rep.sampled, 50);
        let slot_sum: u64 = rep.phase_ticks.iter().sum();
        assert_eq!(
            slot_sum, rep.ticks_total,
            "slot self times must partition the measured total"
        );
        assert!(rep.phase_ticks[Phase::FtlWrite as usize] > 0);
        assert!(rep.phase_ticks[Phase::GcSelect as usize] > 0);
        assert_eq!(rep.phase_entries[Phase::GcSelect as usize], 50);
        let pct: f64 = rep.percentages().iter().sum();
        assert!((pct - 100.0).abs() < 1e-6, "percentages sum to {pct}");
        reset();
        set_stride(64);
    }

    #[test]
    fn stride_samples_one_in_k() {
        let _guard = LOCK.lock().expect("profiler test lock");
        reset();
        set_stride(8);
        for _ in 0..64 {
            let _req = request();
            let _p = phase(Phase::Split);
        }
        let rep = report();
        assert_eq!(rep.requests, 64);
        assert_eq!(rep.sampled, 8);
        // Disarmed requests contribute no phase entries.
        assert_eq!(rep.phase_entries[Phase::Split as usize], 8);
        reset();
        set_stride(64);
    }

    #[test]
    fn disarmed_guards_are_inert() {
        let _guard = LOCK.lock().expect("profiler test lock");
        reset();
        set_stride(u32::MAX);
        {
            let _req = request(); // sampled (countdown starts at 0)
        }
        {
            let _req = request(); // not sampled for a long while
            let _p = phase(Phase::FtlRead);
        }
        let rep = report();
        assert_eq!(rep.sampled, 1);
        assert_eq!(rep.phase_entries[Phase::FtlRead as usize], 0);
        reset();
        set_stride(64);
    }

    #[test]
    fn depth_overflow_truncates_instead_of_corrupting() {
        let _guard = LOCK.lock().expect("profiler test lock");
        reset();
        set_stride(1);
        {
            let _req = request();
            let mut guards = Vec::new();
            for _ in 0..(MAX_DEPTH + 3) {
                guards.push(phase(Phase::FtlWrite));
            }
        }
        let rep = report();
        assert_eq!(rep.truncated_frames, 3);
        let slot_sum: u64 = rep.phase_ticks.iter().sum();
        assert_eq!(slot_sum, rep.ticks_total);
        reset();
        set_stride(64);
    }

    #[test]
    fn merge_adds_reports() {
        let _guard = LOCK.lock().expect("profiler test lock");
        reset();
        set_stride(1);
        {
            let _req = request();
            let _p = phase(Phase::NandErase);
        }
        let a = report();
        reset();
        {
            let _req = request();
            let _p = phase(Phase::NandErase);
        }
        let b = report();
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.sampled, a.sampled + b.sampled);
        assert_eq!(
            merged.phase_entries[Phase::NandErase as usize],
            a.phase_entries[Phase::NandErase as usize] + b.phase_entries[Phase::NandErase as usize]
        );
        assert_eq!(
            merged.hists[Phase::NandErase as usize].count(),
            a.hists[Phase::NandErase as usize].count() + b.hists[Phase::NandErase as usize].count()
        );
        reset();
        set_stride(64);
    }

    #[test]
    fn run_guard_counts_ops_but_times_once() {
        let _guard = LOCK.lock().expect("profiler test lock");
        reset();
        set_stride(1);
        {
            let _req = request();
            let mut run = phase_run(Phase::NandProgram);
            for _ in 0..5 {
                run.bump();
                spin(20);
            }
        }
        let rep = report();
        assert_eq!(rep.phase_entries[Phase::NandProgram as usize], 5);
        // One timestamp pair per run: the histogram sees one observation.
        assert_eq!(rep.hists[Phase::NandProgram as usize].count(), 1);
        let slot_sum: u64 = rep.phase_ticks.iter().sum();
        assert_eq!(slot_sum, rep.ticks_total);
        reset();
        set_stride(64);
    }

    #[test]
    fn run_guard_without_bumps_counts_one_entry() {
        let _guard = LOCK.lock().expect("profiler test lock");
        reset();
        set_stride(1);
        {
            let _req = request();
            let _run = phase_run(Phase::NandErase);
        }
        let rep = report();
        assert_eq!(rep.phase_entries[Phase::NandErase as usize], 1);
        reset();
        set_stride(64);
    }

    #[test]
    fn report_renders_table_and_folded() {
        let _guard = LOCK.lock().expect("profiler test lock");
        reset();
        set_stride(1);
        for _ in 0..10 {
            let _req = request();
            let _p = phase(Phase::FtlWrite);
            spin(100);
        }
        let rep = report();
        let table = rep.render_table();
        assert!(table.contains("ftl.write"));
        assert!(table.contains("total"));
        let folded = rep.render_folded();
        assert!(folded.contains("replay;submit;ftl.write "));
        for line in folded.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("stack<space>count");
            assert!(!stack.is_empty());
            assert!(count.parse::<u64>().is_ok(), "bad folded count: {line}");
        }
        let mut reg = MetricsRegistry::new();
        rep.export_into(&mut reg);
        assert_eq!(reg.counter_value("profile.requests"), Some(10));
        assert!(reg
            .histogram_value("profile.phase.ftl.write.ticks")
            .is_some());
        reset();
        set_stride(64);
    }
}
