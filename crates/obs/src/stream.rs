//! Streaming event export: a [`Sink`] that writes each event to disk as it
//! is emitted instead of buffering the whole run in memory.
//!
//! A full `repro` replay emits hundreds of thousands of lifecycle events;
//! buffering them in a [`crate::VecSink`] costs memory proportional to the
//! trace length. [`JsonlStreamSink`] instead pushes every event through a
//! `BufWriter` straight into the JSONL exporter, so memory stays constant
//! and the file is usable even if the process dies mid-run.
//!
//! The sink is handed to [`crate::Telemetry::with_sink`] by value (boxed),
//! which makes it unreachable afterwards — progress is therefore observed
//! through a shared [`StreamStats`] handle cloned off before attaching.

use crate::event::Event;
use crate::jsonl::write_jsonl_event;
use crate::sink::Sink;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared counters for a [`JsonlStreamSink`]: how many events were written
/// and how many writes failed. Clone the handle before boxing the sink
/// into a `Telemetry`; reads are monotonic and lock-free.
#[derive(Clone, Debug, Default)]
pub struct StreamStats {
    inner: Arc<StreamCounters>,
}

#[derive(Debug, Default)]
struct StreamCounters {
    written: AtomicU64,
    errors: AtomicU64,
}

impl StreamStats {
    /// Events successfully written so far.
    pub fn written(&self) -> u64 {
        self.inner.written.load(Ordering::Relaxed)
    }

    /// Events dropped because a write failed.
    pub fn errors(&self) -> u64 {
        self.inner.errors.load(Ordering::Relaxed)
    }
}

/// A [`Sink`] that streams events as JSON lines through a `BufWriter`.
///
/// Write errors are counted (see [`StreamStats::errors`]) rather than
/// panicking — telemetry must never take the simulation down. The buffer
/// is flushed on drop.
pub struct JsonlStreamSink<W: Write> {
    w: BufWriter<W>,
    stats: StreamStats,
}

impl JsonlStreamSink<File> {
    /// Creates (truncating) `path` and streams events into it.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        Ok(JsonlStreamSink::new(File::create(path)?))
    }
}

impl<W: Write> JsonlStreamSink<W> {
    /// Wraps any writer in the streaming sink.
    pub fn new(w: W) -> Self {
        JsonlStreamSink {
            w: BufWriter::new(w),
            stats: StreamStats::default(),
        }
    }

    /// A handle onto the sink's counters, readable after the sink itself
    /// has been boxed into a `Telemetry`.
    pub fn stats(&self) -> StreamStats {
        self.stats.clone()
    }

    /// Flushes the buffer and returns how many events were written.
    ///
    /// # Errors
    ///
    /// Propagates the flush error.
    pub fn finish(mut self) -> std::io::Result<u64> {
        self.w.flush()?;
        Ok(self.stats.written())
    }
}

impl<W: Write> Sink for JsonlStreamSink<W> {
    fn record(&mut self, event: &Event) {
        match write_jsonl_event(event, &mut self.w) {
            Ok(()) => {
                self.stats.inner.written.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.stats.inner.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl<W: Write> Drop for JsonlStreamSink<W> {
    fn drop(&mut self) {
        // Best effort: the sink usually dies inside a boxed Telemetry where
        // no one can call `finish`.
        let _ = self.w.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::json;
    use crate::sink::Telemetry;
    use hps_core::SimTime;
    use std::sync::Mutex;

    /// A writer backed by shared storage, so the bytes stay reachable after
    /// the sink is boxed away.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn gc_pass(at_ns: u64) -> Event {
        Event::instant(
            SimTime::from_ns(at_ns),
            EventKind::GcPass { ops: 2, idle: true },
        )
    }

    #[test]
    fn streams_events_as_parseable_lines() {
        let buf = SharedBuf::default();
        let sink = JsonlStreamSink::new(buf.clone());
        let stats = sink.stats();
        let mut tel = Telemetry::with_sink(Box::new(sink));
        tel.emit(gc_pass(10));
        tel.emit(gc_pass(20));
        drop(tel); // flushes the BufWriter
        assert_eq!(stats.written(), 2);
        assert_eq!(stats.errors(), 0);
        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = json::parse(lines[0]).unwrap();
        assert_eq!(first.get("kind").unwrap().as_str(), Some("gc_pass"));
        assert_eq!(first.get("ts_ns").unwrap().as_f64(), Some(10.0));
    }

    #[test]
    fn write_errors_are_counted_not_fatal() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk gone"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        // Zero-capacity BufWriter still buffers; force pass-through by
        // writing more than the default buffer — simpler: record enough
        // events to overflow an 8 KiB buffer.
        let sink = JsonlStreamSink::new(Failing);
        let stats = sink.stats();
        let mut sink = sink;
        for i in 0..1000 {
            sink.record(&gc_pass(i));
        }
        assert_eq!(stats.written() + stats.errors(), 1000);
        assert!(stats.errors() > 0, "the failing writer must surface");
        drop(sink);
    }

    #[test]
    fn finish_flushes_and_reports_count() {
        let buf = SharedBuf::default();
        let mut sink = JsonlStreamSink::new(buf.clone());
        sink.record(&gc_pass(1));
        assert_eq!(sink.finish().unwrap(), 1);
        assert!(!buf.0.lock().unwrap().is_empty());
    }
}
