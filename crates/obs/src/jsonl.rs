//! Line-delimited JSON event export.
//!
//! One JSON object per event, tagged with `"kind"`, timestamps in
//! nanoseconds of simulated time. Meant for `jq`/pandas-style ad-hoc
//! analysis where the Chrome trace format is too view-oriented.

use std::io::{self, Write};

use crate::event::{Event, EventKind};

fn payload(kind: &EventKind) -> String {
    match kind {
        EventKind::Request {
            id,
            dir,
            bytes,
            lba,
        } => format!(
            "\"kind\":\"request\",\"id\":{id},\"dir\":\"{}\",\"bytes\":{bytes},\"lba\":{lba}",
            dir.code()
        ),
        EventKind::QueueWait { id } => format!("\"kind\":\"queue_wait\",\"id\":{id}"),
        EventKind::Wakeup { id } => format!("\"kind\":\"wakeup\",\"id\":{id}"),
        EventKind::Split { id, chunks } => {
            format!("\"kind\":\"split\",\"id\":{id},\"chunks\":{chunks}")
        }
        EventKind::FlashOp {
            request,
            op,
            channel,
            die,
            bytes,
            gc,
        } => {
            let req = match request {
                Some(id) => id.to_string(),
                None => "null".to_string(),
            };
            format!(
                "\"kind\":\"flash_op\",\"request\":{req},\"op\":\"{}\",\"channel\":{channel},\"die\":{die},\"bytes\":{bytes},\"gc\":{gc}",
                op.name()
            )
        }
        EventKind::GcPass { ops, idle } => {
            format!("\"kind\":\"gc_pass\",\"ops\":{ops},\"idle\":{idle}")
        }
        EventKind::CacheAck { id, kind } => {
            format!(
                "\"kind\":\"cache_ack\",\"id\":{id},\"ack\":\"{}\"",
                kind.name()
            )
        }
        EventKind::Command { members, bytes } => {
            format!("\"kind\":\"command\",\"members\":{members},\"bytes\":{bytes}")
        }
        EventKind::PowerSleep => "\"kind\":\"power_sleep\"".to_string(),
        EventKind::PlaneQueueDepth { plane, depth } => {
            format!("\"kind\":\"plane_queue_depth\",\"plane\":{plane},\"depth\":{depth}")
        }
        EventKind::PlaneGarbageRatio { plane, ratio } => {
            format!(
                "\"kind\":\"plane_garbage_ratio\",\"plane\":{plane},\"ratio\":{}",
                crate::json::number(*ratio)
            )
        }
    }
}

/// Writes a single event as one JSON line. This is the streaming unit:
/// [`crate::stream::JsonlStreamSink`] calls it per event as the simulation
/// emits, so a long replay never buffers its event stream in memory.
pub fn write_jsonl_event<W: Write>(event: &Event, w: &mut W) -> io::Result<()> {
    writeln!(
        w,
        "{{\"ts_ns\":{},\"dur_ns\":{},{}}}",
        event.start.as_ns(),
        event.dur.as_ns(),
        payload(&event.kind)
    )
}

/// Writes one JSON object per event, in the given order.
pub fn write_jsonl<W: Write>(events: &[Event], mut w: W) -> io::Result<()> {
    for event in events {
        write_jsonl_event(event, &mut w)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use hps_core::{SimDuration, SimTime};

    #[test]
    fn each_line_parses_and_is_tagged() {
        let events = vec![
            Event::span(
                SimTime::from_us(1),
                SimDuration::from_us(2),
                EventKind::GcPass {
                    ops: 3,
                    idle: false,
                },
            ),
            Event::instant(
                SimTime::from_us(4),
                EventKind::Command {
                    members: 2,
                    bytes: 8192,
                },
            ),
        ];
        let mut out = Vec::new();
        write_jsonl(&events, &mut out).unwrap();
        let text = std::str::from_utf8(&out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = json::parse(lines[0]).unwrap();
        assert_eq!(first.get("kind").unwrap().as_str(), Some("gc_pass"));
        assert_eq!(first.get("ts_ns").unwrap().as_f64(), Some(1000.0));
        let second = json::parse(lines[1]).unwrap();
        assert_eq!(second.get("kind").unwrap().as_str(), Some("command"));
        assert_eq!(second.get("dur_ns").unwrap().as_f64(), Some(0.0));
    }
}
