//! Deterministic fixed-width text tables for fleet reports.
//!
//! The fleet engine renders cross-device percentile matrices and
//! scheme × geometry breakdowns; those reports are diffed byte-for-byte
//! across `--jobs` counts and against checked-in goldens, so the renderer
//! must be strictly deterministic: column widths derive only from cell
//! contents, rows render in insertion order, and no locale/terminal state
//! is consulted. The first column is left-aligned (labels), every other
//! column right-aligned (numbers), matching the layout of the repo's
//! experiment tables.

use std::fmt::Write as _;

/// An append-only text table with one left-aligned label column followed
/// by right-aligned value columns.
///
/// # Example
///
/// ```
/// use hps_obs::TextTable;
///
/// let mut t = TextTable::new(&["scheme", "devices", "p99 ms"]);
/// t.row(vec!["HPS".to_string(), "128".to_string(), "3.25".to_string()]);
/// t.row(vec!["4PS".to_string(), "64".to_string(), "11.90".to_string()]);
/// let text = t.render();
/// assert!(text.starts_with("scheme"));
/// assert_eq!(text.lines().count(), 4, "header + rule + two rows");
/// ```
#[derive(Clone, Debug)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new(header: &[&str]) -> Self {
        assert!(!header.is_empty(), "a table needs at least one column");
        TextTable {
            header: header.iter().map(|h| (*h).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Short rows are padded with empty cells; extra
    /// cells beyond the header width are rejected so a malformed report
    /// fails loudly instead of rendering a ragged table.
    ///
    /// # Panics
    ///
    /// Panics if `cells` has more entries than the header.
    pub fn row(&mut self, mut cells: Vec<String>) {
        assert!(
            cells.len() <= self.header.len(),
            "row has {} cells but the table has {} columns",
            cells.len(),
            self.header.len()
        );
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows appended so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been appended.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table: header, a dashed rule, then the rows. Trailing
    /// spaces are trimmed from every line so the output survives
    /// whitespace-normalizing diffs.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        self.render_line(&mut out, &self.header, &widths);
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        self.render_line(&mut out, &rule, &widths);
        for row in &self.rows {
            self.render_line(&mut out, row, &widths);
        }
        out
    }

    fn render_line(&self, out: &mut String, cells: &[String], widths: &[usize]) {
        let mut line = String::new();
        for (i, (cell, width)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            if i == 0 {
                let _ = write!(line, "{cell:<width$}");
            } else {
                let _ = write!(line, "{cell:>width$}");
            }
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_align_and_pad() {
        let mut t = TextTable::new(&["name", "n"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "12345".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "name        n");
        assert_eq!(lines[1], "------  -----");
        assert_eq!(lines[2], "a           1");
        assert_eq!(lines[3], "longer  12345");
    }

    #[test]
    fn short_rows_pad_with_empty_cells() {
        let mut t = TextTable::new(&["k", "v", "extra"]);
        t.row(vec!["x".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn rendering_is_deterministic() {
        let build = || {
            let mut t = TextTable::new(&["a", "b"]);
            t.row(vec!["r1".into(), "1".into()]);
            t.row(vec!["r2".into(), "2".into()]);
            t.render()
        };
        assert_eq!(build(), build());
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn overlong_row_panics() {
        let mut t = TextTable::new(&["only"]);
        t.row(vec!["a".into(), "b".into()]);
    }
}
