//! The request-lifecycle event model.
//!
//! Every event carries a start time and a duration on the *simulated*
//! clock (a zero duration marks an instantaneous event) plus a typed
//! [`EventKind`] payload. Exporters map each event onto a [`Track`]:
//! request-lifecycle events share one track, flash operations land on a
//! per-channel/die track (GC-induced operations on a dedicated GC track),
//! and I/O-stack / power events get tracks of their own.

use hps_core::{Direction, SimDuration, SimTime};

/// Class of a physical flash-array operation.
///
/// Mirrors the FTL's op kinds; `hps-obs` sits below `hps-ftl` in the
/// dependency graph, so it declares its own copy and the producing layer
/// converts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Page read (sense + transfer).
    Read,
    /// Page program.
    Program,
    /// Block erase.
    Erase,
}

impl OpClass {
    /// Lower-case name used by exporters.
    pub const fn name(self) -> &'static str {
        match self {
            OpClass::Read => "read",
            OpClass::Program => "program",
            OpClass::Erase => "erase",
        }
    }
}

/// How a write was acknowledged early, before reaching the MLC array.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AckKind {
    /// Absorbed by the device write buffer (cache-on ack).
    Buffer,
    /// Absorbed by the SLC front log.
    Slc,
}

impl AckKind {
    /// Lower-case name used by exporters.
    pub const fn name(self) -> &'static str {
        match self {
            AckKind::Buffer => "buffer-ack",
            AckKind::Slc => "slc-ack",
        }
    }
}

/// What happened. Identifiers tie events back to the originating host
/// request where one exists; GC and power events stand alone.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// A host request's full lifetime: arrival to completion.
    Request {
        /// Host request id.
        id: u64,
        /// Read or write.
        dir: Direction,
        /// Request payload size in bytes.
        bytes: u64,
        /// Starting logical block address (512 B sectors).
        lba: u64,
    },
    /// Time a request spent waiting behind the device's FIFO horizon.
    QueueWait {
        /// Host request id.
        id: u64,
    },
    /// Power-state exit latency charged to a request that found the
    /// device asleep.
    Wakeup {
        /// Host request id.
        id: u64,
    },
    /// A request was split into per-plane chunks (instantaneous).
    Split {
        /// Host request id.
        id: u64,
        /// Number of flash operations the request produced.
        chunks: u32,
    },
    /// A scheduled flash-array operation.
    FlashOp {
        /// Originating host request id; `None` for GC-internal work.
        request: Option<u64>,
        /// Read, program, or erase.
        op: OpClass,
        /// Channel the operation occupied.
        channel: u32,
        /// Die (flat index across the device) the operation occupied.
        die: u32,
        /// Bytes moved, zero for erases.
        bytes: u64,
        /// `true` if issued on behalf of garbage collection.
        gc: bool,
    },
    /// One garbage-collection pass (threshold or idle-triggered).
    GcPass {
        /// Flash operations the pass issued.
        ops: u32,
        /// `true` if triggered by idle-time detection rather than a
        /// free-space threshold.
        idle: bool,
    },
    /// A write acknowledged early by a cache layer (instantaneous).
    CacheAck {
        /// Host request id.
        id: u64,
        /// Which layer absorbed it.
        kind: AckKind,
    },
    /// An I/O-stack packed/merged command handed to the device
    /// (instantaneous).
    Command {
        /// Host requests folded into the command.
        members: u32,
        /// Total bytes carried.
        bytes: u64,
    },
    /// A span the device spent in a low-power state.
    PowerSleep,
    /// Counter sample: flash operations outstanding in one plane's
    /// current busy window (instantaneous; rendered as a Chrome counter
    /// track).
    PlaneQueueDepth {
        /// FTL plane index.
        plane: u32,
        /// Ops overlapping the plane's busy window at sample time.
        depth: u32,
    },
    /// Counter sample: fraction of one plane's physical pages holding
    /// garbage (invalid data), from the per-pool garbage counters.
    PlaneGarbageRatio {
        /// FTL plane index.
        plane: u32,
        /// Invalid pages / physical pages, in `[0, 1]`.
        ratio: f64,
    },
}

/// One telemetry event on the simulated timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// When the event (or span) started.
    pub start: SimTime,
    /// Span length; zero for instantaneous events.
    pub dur: SimDuration,
    /// Typed payload.
    pub kind: EventKind,
}

impl Event {
    /// A spanning event.
    pub fn span(start: SimTime, dur: SimDuration, kind: EventKind) -> Self {
        Event { start, dur, kind }
    }

    /// An instantaneous event.
    pub fn instant(at: SimTime, kind: EventKind) -> Self {
        Event {
            start: at,
            dur: SimDuration::ZERO,
            kind,
        }
    }

    /// The track this event is drawn on.
    pub fn track(&self) -> Track {
        match &self.kind {
            EventKind::Request { .. }
            | EventKind::QueueWait { .. }
            | EventKind::Wakeup { .. }
            | EventKind::Split { .. }
            | EventKind::CacheAck { .. } => Track::Requests,
            EventKind::FlashOp { gc: true, .. } | EventKind::GcPass { .. } => Track::Gc,
            EventKind::FlashOp { channel, die, .. } => Track::Die {
                channel: *channel,
                die: *die,
            },
            EventKind::Command { .. } => Track::Stack,
            EventKind::PowerSleep => Track::Power,
            EventKind::PlaneQueueDepth { plane, .. } => Track::PlaneQueue { plane: *plane },
            EventKind::PlaneGarbageRatio { plane, .. } => Track::PlaneGarbage { plane: *plane },
        }
    }

    /// Short display name used by exporters.
    pub fn name(&self) -> String {
        match &self.kind {
            EventKind::Request { id, dir, .. } => {
                format!("{} #{id}", if dir.is_write() { "write" } else { "read" })
            }
            EventKind::QueueWait { id } => format!("queue #{id}"),
            EventKind::Wakeup { id } => format!("wakeup #{id}"),
            EventKind::Split { id, chunks } => format!("split #{id} x{chunks}"),
            EventKind::FlashOp { op, gc, .. } => {
                if *gc {
                    format!("gc-{}", op.name())
                } else {
                    op.name().to_string()
                }
            }
            EventKind::GcPass { idle, .. } => {
                if *idle {
                    "gc-pass (idle)".to_string()
                } else {
                    "gc-pass".to_string()
                }
            }
            EventKind::CacheAck { kind, .. } => kind.name().to_string(),
            EventKind::Command { .. } => "command".to_string(),
            EventKind::PowerSleep => "sleep".to_string(),
            // Counter names embed the plane so Chrome/Perfetto (which key
            // counters by name) keep one series per plane.
            EventKind::PlaneQueueDepth { plane, .. } => format!("plane{plane} queue depth"),
            EventKind::PlaneGarbageRatio { plane, .. } => format!("plane{plane} garbage ratio"),
        }
    }
}

/// Where an event is drawn in track-oriented exporters (one Perfetto
/// "thread" per track).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Track {
    /// Host request lifecycle spans.
    Requests,
    /// I/O-stack command formation.
    Stack,
    /// Garbage collection.
    Gc,
    /// Device power state.
    Power,
    /// One flash die, labelled with its channel.
    Die {
        /// Owning channel index.
        channel: u32,
        /// Flat die index across the device.
        die: u32,
    },
    /// Per-plane queue-depth counter samples.
    PlaneQueue {
        /// FTL plane index.
        plane: u32,
    },
    /// Per-plane garbage-ratio counter samples.
    PlaneGarbage {
        /// FTL plane index.
        plane: u32,
    },
}

impl Track {
    /// Stable thread id for Chrome trace export. Die tracks start at 16,
    /// plane queue-depth tracks at 64 and plane garbage-ratio tracks at
    /// 96, leaving the low ids for the fixed tracks.
    pub fn tid(&self) -> u64 {
        match self {
            Track::Requests => 0,
            Track::Stack => 1,
            Track::Gc => 2,
            Track::Power => 3,
            Track::Die { die, .. } => 16 + u64::from(*die),
            Track::PlaneQueue { plane } => 64 + u64::from(*plane),
            Track::PlaneGarbage { plane } => 96 + u64::from(*plane),
        }
    }

    /// Human-readable track label.
    pub fn label(&self) -> String {
        match self {
            Track::Requests => "requests".to_string(),
            Track::Stack => "io-stack".to_string(),
            Track::Gc => "gc".to_string(),
            Track::Power => "power".to_string(),
            Track::Die { channel, die } => format!("ch{channel}/die{die}"),
            Track::PlaneQueue { plane } => format!("plane{plane} queue"),
            Track::PlaneGarbage { plane } => format!("plane{plane} garbage"),
        }
    }
}
