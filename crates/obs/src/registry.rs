//! Named counters and log-bucketed histograms.
//!
//! The registry replaces bespoke per-layer counter structs with a single
//! flat namespace (`layer.metric` by convention: `emmc.flash.programs`,
//! `ftl.gc.runs`, …). Producers intern a name once to get a cheap
//! [`CounterId`]/[`HistogramId`] handle, then update through the handle on
//! the hot path; convenience by-name methods exist for cold paths.
//! Registries from independent runs merge exactly (bucket counts are
//! integers), which is what makes per-shard replay aggregation sound.

use hps_core::hash::FxHashMap;

/// Exponent of the smallest distinguished histogram bucket edge
/// (`2^MIN_EXP` ≈ 1e-6 — microsecond-scale latencies in ms units).
const MIN_EXP: i32 = -20;
/// Exponent of the largest finite bucket edge (`2^MAX_EXP` ≈ 1.8e13).
const MAX_EXP: i32 = 44;
/// Bucket 0 is the underflow bucket (`v <= 2^MIN_EXP`), the last bucket
/// the overflow bucket (`v > 2^MAX_EXP`).
const N_BUCKETS: usize = (MAX_EXP - MIN_EXP) as usize + 2;

/// A latency/size histogram with logarithmic (power-of-two) buckets.
///
/// Bucket `i` (for `1 <= i <= MAX_EXP-MIN_EXP`) covers
/// `(2^(MIN_EXP+i-1), 2^(MIN_EXP+i)]`; bucket 0 catches everything at or
/// below `2^MIN_EXP` (including zero and negatives), the last bucket
/// everything above `2^MAX_EXP`. Quantiles interpolate linearly within a
/// bucket and are clamped to the observed `[min, max]`.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    counts: [u64; N_BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        LogHistogram {
            counts: [0; N_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Number of buckets, including the underflow and overflow buckets.
    pub const fn n_buckets() -> usize {
        N_BUCKETS
    }

    /// The bucket a value falls into.
    pub fn bucket_index(v: f64) -> usize {
        if v.is_nan() || v <= 2f64.powi(MIN_EXP) {
            // Underflow bucket: zero, negatives, NaN, and tiny values.
            return 0;
        }
        let exp = v.log2().ceil() as i32;
        if exp > MAX_EXP {
            return N_BUCKETS - 1;
        }
        (exp - MIN_EXP).max(1) as usize
    }

    /// Inclusive upper edge of bucket `i`; infinite for the overflow
    /// bucket.
    pub fn bucket_upper_edge(i: usize) -> f64 {
        if i >= N_BUCKETS - 1 {
            f64::INFINITY
        } else {
            2f64.powi(MIN_EXP + i as i32)
        }
    }

    /// Records one observation. Non-finite values are ignored.
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.counts[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of observations; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Raw bucket counts (underflow first, overflow last).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Approximate `q`-quantile (`q` clamped to `[0, 1]`); `None` when
    /// empty. Monotone non-decreasing in `q`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Position of the target observation among `count` sorted samples.
        let pos = q * (self.count - 1) as f64;
        // The extremes are tracked exactly; interior quantiles interpolate
        // within a bucket (clamped to [min, max], so they stay between
        // these endpoints and monotonicity in `q` is preserved).
        if pos <= 0.0 {
            return Some(self.min);
        }
        if pos >= (self.count - 1) as f64 {
            return Some(self.max);
        }
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let bucket_start = cum as f64;
            cum += c;
            if pos < cum as f64 || cum == self.count {
                // Interpolate within the bucket by rank.
                let frac = ((pos - bucket_start) / c as f64).clamp(0.0, 1.0);
                let lower = if i == 0 {
                    0.0
                } else {
                    Self::bucket_upper_edge(i - 1)
                };
                let upper = Self::bucket_upper_edge(i).min(self.max);
                let lower = lower.min(upper);
                let v = lower + (upper - lower) * frac;
                return Some(v.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Adds another histogram's observations into this one. Bucket counts
    /// merge exactly, so merging is associative and commutative up to
    /// floating-point summation of `sum`.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Handle to a registered counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CounterId(usize);

/// Handle to a registered histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct HistogramId(usize);

/// A counter or histogram stored in the registry.
///
/// The histogram is boxed so that counter-heavy registries don't pay the
/// histogram's ~560-byte footprint per entry.
#[derive(Clone, Debug)]
pub enum Metric {
    /// Monotonic event count.
    Counter(u64),
    /// Value distribution.
    Histogram(Box<LogHistogram>),
}

/// A flat namespace of counters and histograms.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    entries: Vec<(String, Metric)>,
    index: FxHashMap<String, usize>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// `true` if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Interns `name` as a counter and returns its handle. Re-registering
    /// the same name returns the existing handle.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a histogram.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(&i) = self.index.get(name) {
            assert!(
                matches!(self.entries[i].1, Metric::Counter(_)),
                "metric {name:?} already registered as a histogram"
            );
            return CounterId(i);
        }
        let i = self.entries.len();
        self.entries.push((name.to_string(), Metric::Counter(0)));
        self.index.insert(name.to_string(), i);
        CounterId(i)
    }

    /// Interns `name` as a histogram and returns its handle.
    /// Re-registering the same name returns the existing handle.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a counter.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        if let Some(&i) = self.index.get(name) {
            assert!(
                matches!(self.entries[i].1, Metric::Histogram(_)),
                "metric {name:?} already registered as a counter"
            );
            return HistogramId(i);
        }
        let i = self.entries.len();
        self.entries
            .push((name.to_string(), Metric::Histogram(Box::default())));
        self.index.insert(name.to_string(), i);
        HistogramId(i)
    }

    /// Increments a counter through its handle.
    pub fn inc(&mut self, id: CounterId, by: u64) {
        match &mut self.entries[id.0].1 {
            Metric::Counter(v) => *v += by,
            Metric::Histogram(_) => unreachable!("CounterId always indexes a counter"),
        }
    }

    /// Records an observation through a histogram handle.
    pub fn observe(&mut self, id: HistogramId, v: f64) {
        match &mut self.entries[id.0].1 {
            Metric::Histogram(h) => h.observe(v),
            Metric::Counter(_) => unreachable!("HistogramId always indexes a histogram"),
        }
    }

    /// Folds a standalone histogram's observations into a registered
    /// histogram through its handle — the bulk counterpart of
    /// [`MetricsRegistry::observe`] for pre-accumulated data.
    pub fn merge_histogram(&mut self, id: HistogramId, other: &LogHistogram) {
        match &mut self.entries[id.0].1 {
            Metric::Histogram(h) => h.merge(other),
            Metric::Counter(_) => unreachable!("HistogramId always indexes a histogram"),
        }
    }

    /// By-name counter increment (interns on first use) — cold paths only.
    pub fn add(&mut self, name: &str, by: u64) {
        let id = self.counter(name);
        self.inc(id, by);
    }

    /// By-name histogram observation (interns on first use) — cold paths
    /// only.
    pub fn record(&mut self, name: &str, v: f64) {
        let id = self.histogram(name);
        self.observe(id, v);
    }

    /// Current value of a counter, if registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.index.get(name).map(|&i| &self.entries[i].1) {
            Some(Metric::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// A histogram's current state, if registered.
    pub fn histogram_value(&self, name: &str) -> Option<&LogHistogram> {
        match self.index.get(name).map(|&i| &self.entries[i].1) {
            Some(Metric::Histogram(h)) => Some(h.as_ref()),
            _ => None,
        }
    }

    /// All metrics, sorted by name.
    pub fn iter_sorted(&self) -> Vec<(&str, &Metric)> {
        let mut out: Vec<(&str, &Metric)> =
            self.entries.iter().map(|(n, m)| (n.as_str(), m)).collect();
        out.sort_by_key(|(n, _)| *n);
        out
    }

    /// Folds another registry into this one: counters add, histograms
    /// merge, names absent here are adopted.
    ///
    /// # Panics
    ///
    /// Panics if a name is a counter in one registry and a histogram in
    /// the other.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, metric) in &other.entries {
            match metric {
                Metric::Counter(v) => {
                    let id = self.counter(name);
                    self.inc(id, *v);
                }
                Metric::Histogram(h) => {
                    let id = self.histogram(name);
                    match &mut self.entries[id.0].1 {
                        Metric::Histogram(mine) => mine.merge(h),
                        Metric::Counter(_) => unreachable!(),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_partition_the_line() {
        // Every value lands in exactly one bucket whose edges bracket it.
        for &v in &[0.0, 1e-9, 0.001, 0.5, 1.0, 1.5, 4.0, 1e6, 1e15] {
            let i = LogHistogram::bucket_index(v);
            let upper = LogHistogram::bucket_upper_edge(i);
            assert!(v <= upper, "{v} above its bucket edge {upper}");
            if i > 0 {
                let lower = LogHistogram::bucket_upper_edge(i - 1);
                assert!(v > lower, "{v} at or below the previous edge {lower}");
            }
        }
    }

    #[test]
    fn quantiles_bracket_observations() {
        let mut h = LogHistogram::new();
        for i in 1..=1000 {
            h.observe(i as f64 * 0.1);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 >= h.min().unwrap() && p50 <= h.max().unwrap());
        assert!(p99 >= p50);
        assert_eq!(h.quantile(0.0).unwrap(), h.min().unwrap());
        assert_eq!(h.quantile(1.0).unwrap(), h.max().unwrap());
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_is_exact_on_counts() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for i in 0..100 {
            a.observe(i as f64);
            b.observe((i * 7) as f64);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 200);
        for i in 0..LogHistogram::n_buckets() {
            assert_eq!(
                merged.bucket_counts()[i],
                a.bucket_counts()[i] + b.bucket_counts()[i]
            );
        }
    }

    #[test]
    fn registry_counters_and_histograms() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("emmc.requests");
        let h = reg.histogram("emmc.response_ms");
        reg.inc(c, 3);
        reg.observe(h, 1.5);
        reg.add("emmc.requests", 2);
        reg.record("emmc.response_ms", 2.5);
        assert_eq!(reg.counter_value("emmc.requests"), Some(5));
        assert_eq!(reg.histogram_value("emmc.response_ms").unwrap().count(), 2);
        assert_eq!(reg.counter_value("missing"), None);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_conflict_panics() {
        let mut reg = MetricsRegistry::new();
        reg.counter("x");
        reg.histogram("x");
    }

    #[test]
    fn registry_merge_adds_and_adopts() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.add("shared", 1);
        b.add("shared", 10);
        b.add("only-b", 4);
        b.record("hist", 2.0);
        a.merge(&b);
        assert_eq!(a.counter_value("shared"), Some(11));
        assert_eq!(a.counter_value("only-b"), Some(4));
        assert_eq!(a.histogram_value("hist").unwrap().count(), 1);
    }

    #[test]
    fn iter_sorted_is_sorted() {
        let mut reg = MetricsRegistry::new();
        reg.add("z", 1);
        reg.add("a", 1);
        reg.add("m", 1);
        let names: Vec<&str> = reg.iter_sorted().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }
}
