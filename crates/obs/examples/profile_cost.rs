//! Micro-measurement of the profiler's always-on hot-path cost:
//! one `request()` root guard plus six disarmed `phase()` guards per
//! iteration, the same shape a simulated request sees.
//!
//! Run: `cargo run --release -p hps-obs --example profile_cost`

// lint: allow-scope(wall-clock) -- this example measures the profiler's real
// (host) overhead, so wall-clock time is the measurement, not a bug.

use hps_obs::profile;

fn main() {
    const ITERS: u64 = 2_000_000;
    let t0 = std::time::Instant::now();
    for _ in 0..ITERS {
        let _req = profile::request();
        let p = profile::phase(hps_obs::Phase::Split);
        drop(p);
        let p = profile::phase(hps_obs::Phase::QueueWait);
        drop(p);
        let p = profile::phase(hps_obs::Phase::FtlWrite);
        drop(p);
        let p = profile::phase(hps_obs::Phase::FtlMapLookup);
        drop(p);
        let p = profile::phase(hps_obs::Phase::NandProgram);
        drop(p);
        let p = profile::phase(hps_obs::Phase::NandRead);
        drop(p);
        std::hint::black_box(());
    }
    let per_iter = t0.elapsed().as_nanos() as f64 / ITERS as f64;
    println!("request + 6 phase guards (stride 64): {per_iter:.2} ns/iter");

    profile::set_stride(u32::MAX);
    profile::reset();
    let t0 = std::time::Instant::now();
    for _ in 0..ITERS {
        let _req = profile::request();
        let p = profile::phase(hps_obs::Phase::Split);
        drop(p);
        let p = profile::phase(hps_obs::Phase::QueueWait);
        drop(p);
        let p = profile::phase(hps_obs::Phase::FtlWrite);
        drop(p);
        let p = profile::phase(hps_obs::Phase::FtlMapLookup);
        drop(p);
        let p = profile::phase(hps_obs::Phase::NandProgram);
        drop(p);
        let p = profile::phase(hps_obs::Phase::NandRead);
        drop(p);
        std::hint::black_box(());
    }
    let per_iter = t0.elapsed().as_nanos() as f64 / ITERS as f64;
    println!("request + 6 phase guards (never sampled): {per_iter:.2} ns/iter");

    let t0 = std::time::Instant::now();
    for _ in 0..ITERS {
        let _req = profile::request();
        std::hint::black_box(());
    }
    let per_iter = t0.elapsed().as_nanos() as f64 / ITERS as f64;
    println!("request alone (never sampled): {per_iter:.2} ns/iter");

    let t0 = std::time::Instant::now();
    for _ in 0..ITERS {
        let p = profile::phase(hps_obs::Phase::Split);
        drop(p);
        std::hint::black_box(());
    }
    let per_iter = t0.elapsed().as_nanos() as f64 / ITERS as f64;
    println!("one disarmed phase guard: {per_iter:.2} ns/iter");

    let t0 = std::time::Instant::now();
    for _ in 0..ITERS {
        std::hint::black_box(());
    }
    let per_iter = t0.elapsed().as_nanos() as f64 / ITERS as f64;
    println!("empty loop: {per_iter:.2} ns/iter");
    profile::set_stride(64);
}
