//! Property-based tests for the log-bucketed histogram, the Chrome
//! trace exporter, and mergeable metric snapshots.

use hps_core::hash::FxHashMap;
use hps_core::{SimDuration, SimTime};
use hps_obs::json::{parse, Value};
use hps_obs::{
    write_chrome_trace, Event, EventKind, LogHistogram, MetricsRegistry, MetricsSnapshot, OpClass,
    SnapshotTreeMerger,
};
use proptest::prelude::*;

/// One recorded operation against a registry: a counter bump or a
/// histogram sample, on one of a small set of metric names so splits
/// share names across shards.
#[derive(Clone, Debug)]
enum Op {
    Inc(usize, u64),
    Observe(usize, f64),
}

const COUNTER_NAMES: [&str; 4] = ["reqs", "bytes", "gc_runs", "cache_hits"];
const HIST_NAMES: [&str; 4] = ["latency_ns", "queue_depth", "chunk_bytes", "gc_ops"];

fn apply(registry: &mut MetricsRegistry, op: &Op) {
    match *op {
        Op::Inc(name, by) => registry.add(COUNTER_NAMES[name], by),
        Op::Observe(name, sample) => registry.record(HIST_NAMES[name], sample),
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0..COUNTER_NAMES.len()), 0u64..1000).prop_map(|(n, by)| Op::Inc(n, by)),
        ((0..HIST_NAMES.len()), 1e-6f64..1e9).prop_map(|(n, s)| Op::Observe(n, s)),
    ]
}

proptest! {
    #[test]
    fn every_sample_lands_in_its_bracket(samples in prop::collection::vec(1e-7f64..1e12, 1..200)) {
        // A sample observed into bucket i must satisfy
        // edge(i-1) < sample <= edge(i): the bucket brackets the value.
        for &s in &samples {
            let i = LogHistogram::bucket_index(s);
            let upper = LogHistogram::bucket_upper_edge(i);
            prop_assert!(s <= upper, "sample {s} above bucket {i} edge {upper}");
            if i > 0 {
                let lower = LogHistogram::bucket_upper_edge(i - 1);
                prop_assert!(s > lower, "sample {s} not above bucket {}'s edge {lower}", i - 1);
            }
        }
    }

    #[test]
    fn counts_and_extremes_are_exact(samples in prop::collection::vec(1e-6f64..1e9, 1..300)) {
        let mut h = LogHistogram::new();
        for &s in &samples {
            h.observe(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(h.min(), Some(min));
        prop_assert_eq!(h.max(), Some(max));
        prop_assert!((h.sum() - samples.iter().sum::<f64>()).abs() <= 1e-6 * h.sum().abs());
    }

    #[test]
    fn merge_is_associative_on_counts(
        a in prop::collection::vec(1e-6f64..1e9, 0..100),
        b in prop::collection::vec(1e-6f64..1e9, 0..100),
        c in prop::collection::vec(1e-6f64..1e9, 0..100),
    ) {
        let hist = |samples: &[f64]| {
            let mut h = LogHistogram::new();
            for &s in samples {
                h.observe(s);
            }
            h
        };
        // (a ∪ b) ∪ c == a ∪ (b ∪ c): bucket counts are integers, so the
        // merge is exact regardless of grouping.
        let mut left = hist(&a);
        left.merge(&hist(&b));
        left.merge(&hist(&c));
        let mut bc = hist(&b);
        bc.merge(&hist(&c));
        let mut right = hist(&a);
        right.merge(&bc);
        prop_assert_eq!(left.bucket_counts(), right.bucket_counts());
        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.min(), right.min());
        prop_assert_eq!(left.max(), right.max());
    }

    #[test]
    fn merge_matches_sequential_observation(
        a in prop::collection::vec(1e-6f64..1e9, 1..150),
        b in prop::collection::vec(1e-6f64..1e9, 1..150),
    ) {
        let mut merged = LogHistogram::new();
        for &s in &a {
            merged.observe(s);
        }
        let mut other = LogHistogram::new();
        for &s in &b {
            other.observe(s);
        }
        merged.merge(&other);
        let mut seq = LogHistogram::new();
        for &s in a.iter().chain(&b) {
            seq.observe(s);
        }
        prop_assert_eq!(merged.bucket_counts(), seq.bucket_counts());
        prop_assert_eq!(merged.min(), seq.min());
        prop_assert_eq!(merged.max(), seq.max());
    }

    #[test]
    fn quantiles_are_monotone_and_bracketed(
        samples in prop::collection::vec(1e-6f64..1e9, 1..300),
        qs in prop::collection::vec(0f64..=1.0, 2..20),
    ) {
        let mut h = LogHistogram::new();
        for &s in &samples {
            h.observe(s);
        }
        let mut qs = qs;
        qs.sort_by(f64::total_cmp);
        let mut prev = f64::NEG_INFINITY;
        for &q in &qs {
            let v = h.quantile(q).expect("non-empty histogram");
            prop_assert!(v >= prev, "quantile({q})={v} dropped below {prev}");
            prop_assert!(v >= h.min().unwrap() && v <= h.max().unwrap());
            prev = v;
        }
        prop_assert_eq!(h.quantile(0.0), h.min());
        prop_assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn chrome_export_is_wellformed_and_tracks_are_ordered(
        spans in prop::collection::vec(
            ((0u64..1u64 << 40), (0u64..1u64 << 20), (0u32..2), (0u32..4)),
            1..100,
        ),
    ) {
        let events: Vec<Event> = spans
            .iter()
            .map(|&(start, dur, channel, die)| Event::span(
                SimTime::from_ns(start),
                SimDuration::from_ns(dur),
                EventKind::FlashOp {
                    request: Some(1),
                    op: OpClass::Program,
                    channel,
                    die,
                    bytes: 4096,
                    gc: false,
                },
            ))
            .collect();
        let mut out = Vec::new();
        write_chrome_trace(&events, &mut out).unwrap();
        let doc = parse(std::str::from_utf8(&out).unwrap()).expect("valid JSON");
        let trace_events = doc
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        // ts must be monotone non-decreasing per track (tid).
        let mut last_ts: FxHashMap<i64, f64> = FxHashMap::default();
        let mut spans_seen = 0usize;
        for e in trace_events {
            let ph = e.get("ph").and_then(Value::as_str).expect("ph");
            if ph == "M" {
                continue;
            }
            spans_seen += 1;
            let tid = e.get("tid").and_then(Value::as_f64).expect("tid") as i64;
            let ts = e.get("ts").and_then(Value::as_f64).expect("ts");
            if let Some(&prev) = last_ts.get(&tid) {
                prop_assert!(ts >= prev, "track {tid} went backwards: {prev} -> {ts}");
            }
            last_ts.insert(tid, ts);
        }
        prop_assert_eq!(spans_seen, events.len());
    }

    #[test]
    fn merged_shard_snapshots_equal_single_run_byte_for_byte(
        ops in prop::collection::vec(op_strategy(), 0..400),
        shards in 1usize..6,
        assignment in prop::collection::vec(0usize..6, 0..400),
    ) {
        // One registry sees every op in order; K shard registries each
        // see a disjoint subset. Merging the shard snapshots must
        // reproduce the single-run snapshot exactly — counters, histogram
        // bucket counts, count/min/max — down to the canonical bytes.
        let mut single = MetricsRegistry::new();
        let mut shard_regs: Vec<MetricsRegistry> =
            (0..shards).map(|_| MetricsRegistry::new()).collect();
        for (i, op) in ops.iter().enumerate() {
            apply(&mut single, op);
            let shard = assignment.get(i).copied().unwrap_or(0) % shards;
            apply(&mut shard_regs[shard], op);
        }
        let mut merged = MetricsSnapshot::new();
        for reg in &shard_regs {
            merged.merge(&MetricsSnapshot::capture(reg));
        }
        let single_snap = MetricsSnapshot::capture(&single);
        prop_assert_eq!(merged.canonical_bytes(), single_snap.canonical_bytes());
    }

    #[test]
    fn tree_merge_matches_sequential_merge_for_any_partition(
        ops in prop::collection::vec(op_strategy(), 0..400),
        shards in 1usize..9,
        assignment in prop::collection::vec(0usize..9, 0..400),
    ) {
        // Partition the op stream over K shard registries any way at all,
        // then reduce the shard snapshots two ways: a plain left fold and
        // the fleet engine's O(log n) binary-carry tree. The tree must be
        // indistinguishable from the fold — same canonical bytes — or a
        // parallel fleet run would depend on its shard count.
        let mut shard_regs: Vec<MetricsRegistry> =
            (0..shards).map(|_| MetricsRegistry::new()).collect();
        for (i, op) in ops.iter().enumerate() {
            let shard = assignment.get(i).copied().unwrap_or(0) % shards;
            apply(&mut shard_regs[shard], op);
        }
        let snaps: Vec<MetricsSnapshot> =
            shard_regs.iter().map(MetricsSnapshot::capture).collect();
        let mut sequential = MetricsSnapshot::new();
        for s in &snaps {
            sequential.merge(s);
        }
        let mut tree = SnapshotTreeMerger::new();
        for s in snaps {
            tree.push(s);
        }
        prop_assert_eq!(tree.finish().canonical_bytes(), sequential.canonical_bytes());
    }

    #[test]
    fn merge_order_of_shards_is_irrelevant(
        ops in prop::collection::vec(op_strategy(), 1..200),
        split in 1usize..4,
    ) {
        // Round-robin the ops over `split + 1` shards, then merge the
        // shard snapshots in forward and reverse order: identical bytes.
        let shards = split + 1;
        let mut shard_regs: Vec<MetricsRegistry> =
            (0..shards).map(|_| MetricsRegistry::new()).collect();
        for (i, op) in ops.iter().enumerate() {
            apply(&mut shard_regs[i % shards], op);
        }
        let snaps: Vec<MetricsSnapshot> =
            shard_regs.iter().map(MetricsSnapshot::capture).collect();
        let mut forward = MetricsSnapshot::new();
        for s in &snaps {
            forward.merge(s);
        }
        let mut reverse = MetricsSnapshot::new();
        for s in snaps.iter().rev() {
            reverse.merge(s);
        }
        prop_assert_eq!(forward.canonical_bytes(), reverse.canonical_bytes());
    }
}
