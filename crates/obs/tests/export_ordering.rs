//! Regression tests: every registry export path shares one canonical
//! (name-sorted) ordering, so `repro diff` can never flag churn that is
//! only a difference in metric *registration order*.
//!
//! The risk this pins down: `ReplayMetrics::to_registry` interns its
//! percentile histograms in one order, `ProfileReport::export_into`
//! interns the `profile.phase.*` metrics in another, and a future code
//! motion could interleave them differently between two builds. If any
//! exporter walked insertion order, `repro diff` would report spurious
//! divergence on identical measurements.

use hps_obs::profile::{Phase, N_PHASES, N_SLOTS, OTHER_SLOT};
use hps_obs::{
    diff_summaries, parse_summary, render_summary, LogHistogram, MetricsRegistry, MetricsSnapshot,
    ProfileReport,
};

/// A deterministic, non-trivial profile report (no live profiling —
/// ordering is a pure encoding property).
fn sample_report() -> ProfileReport {
    let mut hists = [const { LogHistogram::new() }; N_PHASES];
    for (i, h) in hists.iter_mut().enumerate() {
        for k in 1..=(i as u64 + 2) {
            h.observe((k * 100) as f64);
        }
    }
    let mut phase_ticks = [0u64; N_SLOTS];
    let mut phase_entries = [0u64; N_SLOTS];
    for slot in 0..N_SLOTS {
        phase_ticks[slot] = 1_000 + slot as u64;
        phase_entries[slot] = 10 + slot as u64;
    }
    ProfileReport {
        requests: 640,
        sampled: 10,
        stride: 64,
        ticks_total: phase_ticks.iter().sum(),
        truncated_frames: 0,
        phase_ticks,
        phase_entries,
        hists,
    }
}

/// Replay-style metrics interned the way `ReplayMetrics::to_registry`
/// does: counters first, percentile histograms after.
fn add_replay_style(registry: &mut MetricsRegistry) {
    registry.add("emmc.requests", 640);
    registry.add("emmc.requests.read", 400);
    registry.record("emmc.response_ms", 1.25);
    registry.record("emmc.response_ms", 9.5);
    registry.record("ftl.gc.moved_pages", 17.0);
}

#[test]
fn summary_rendering_is_insertion_order_independent() {
    // Registry A: replay metrics first, then the profile export.
    let mut a = MetricsRegistry::new();
    add_replay_style(&mut a);
    sample_report().export_into(&mut a);

    // Registry B: profile export first, then replay metrics.
    let mut b = MetricsRegistry::new();
    sample_report().export_into(&mut b);
    add_replay_style(&mut b);

    assert_eq!(
        render_summary(&a),
        render_summary(&b),
        "render_summary must sort by name, not insertion order"
    );
}

#[test]
fn diff_flags_nothing_across_registration_orders() {
    let mut a = MetricsRegistry::new();
    add_replay_style(&mut a);
    sample_report().export_into(&mut a);
    let mut b = MetricsRegistry::new();
    sample_report().export_into(&mut b);
    add_replay_style(&mut b);

    let pa = parse_summary(&render_summary(&a)).expect("summary A parses");
    let pb = parse_summary(&render_summary(&b)).expect("summary B parses");
    let diffs = diff_summaries(&pa, &pb, 0.0);
    assert!(
        diffs.is_empty(),
        "ordering-only churn was flagged: {:?}",
        diffs.iter().map(|d| &d.name).collect::<Vec<_>>()
    );
}

#[test]
fn snapshot_bytes_are_insertion_order_independent() {
    let mut a = MetricsRegistry::new();
    add_replay_style(&mut a);
    sample_report().export_into(&mut a);
    let mut b = MetricsRegistry::new();
    sample_report().export_into(&mut b);
    add_replay_style(&mut b);

    assert_eq!(
        MetricsSnapshot::capture(&a).canonical_bytes(),
        MetricsSnapshot::capture(&b).canonical_bytes(),
        "canonical snapshot encoding must sort by name"
    );
}

#[test]
fn profile_export_names_follow_the_label_convention() {
    // The profile.* namespace must stay disjoint from the emmc.*/ftl.*
    // replay namespaces and use each phase's stable label, so sorted
    // exports group deterministically.
    let mut registry = MetricsRegistry::new();
    sample_report().export_into(&mut registry);
    let names: Vec<&str> = registry.iter_sorted().iter().map(|(n, _)| *n).collect();
    assert!(names.iter().all(|n| n.starts_with("profile.")));
    for phase in Phase::ALL {
        assert!(names.contains(&format!("profile.phase.{}.ticks", phase.label()).as_str()));
    }
    assert!(names.contains(&"profile.phase.device.dispatch.self_ticks"));
    assert_eq!(OTHER_SLOT, N_PHASES);
}
